"""Lazy-deletion timer cancellation: counters, compaction, ordering.

The kernel tombstones cancelled timers in place and rebuilds the calendar
once tombstones dominate (see ``repro.sim.core._COMPACT_MIN``).  These tests
pin the bookkeeping and — crucially — that compaction never changes what
runs when.
"""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment
from repro.sim.core import _COMPACT_MIN


class TestCancelBookkeeping:
    def test_cancel_is_idempotent(self):
        env = Environment()
        timer = env.call_in(5, lambda: None)
        timer.cancel()
        timer.cancel()
        assert env._cancelled == 1
        assert not timer.active

    def test_cancel_after_fire_is_noop(self):
        env = Environment()
        fired = []
        timer = env.call_in(1, fired.append, 1)
        env.run()
        assert fired == [1]
        timer.cancel()  # must not count a tombstone for a popped entry
        assert env._cancelled == 0
        assert not timer.active

    def test_pop_decrements_counter(self):
        env = Environment()
        env.call_in(1, lambda: None).cancel()
        env.call_in(2, lambda: None)
        assert env._cancelled == 1
        env.run()
        assert env._cancelled == 0

    def test_peek_skips_tombstones(self):
        env = Environment()
        env.call_in(1, lambda: None).cancel()
        env.call_in(2, lambda: None)
        assert env.peek() == 2
        assert env._cancelled == 0  # peek discarded the tombstone

    def test_step_skips_tombstones(self):
        env = Environment()
        env.call_in(1, lambda: None).cancel()
        out = []
        env.call_in(2, out.append, "live")
        env.step()
        assert out == ["live"]
        assert env._cancelled == 0

    def test_active_property(self):
        env = Environment()
        timer = env.call_in(3, lambda: None)
        assert timer.active
        timer.cancel()
        assert not timer.active


class TestCompaction:
    def test_compaction_triggers_and_preserves_survivors(self):
        env = Environment()
        fired = []
        survivors = []
        tombstones = []
        # Interleave live and soon-cancelled timers at distinct times.
        for i in range(2 * _COMPACT_MIN):
            if i % 4 == 0:
                survivors.append((i, env.call_in(i + 1, fired.append, i)))
            else:
                tombstones.append(env.call_in(i + 1, fired.append, -1))
        for timer in tombstones:
            timer.cancel()
        # The _COMPACT_MIN-th cancel crossed both thresholds and compacted
        # the 1024 tombstones present at that instant; the remaining 512
        # cancels stay below the absolute floor and sit tombstoned.
        assert env._cancelled == len(tombstones) - _COMPACT_MIN
        assert len(env._heap) == len(survivors) + env._cancelled
        env.run()
        assert fired == [i for i, _t in survivors]

    def test_compaction_keeps_heap_identity(self):
        # run() holds a local binding to the heap list; a compaction from
        # inside a callback must mutate that same list object.
        env = Environment()
        heap_id = id(env._heap)
        fired = []

        def cancel_many():
            timers = [env.call_in(10 + i, fired.append, -1)
                      for i in range(2 * _COMPACT_MIN)]
            for timer in timers:
                timer.cancel()
            env.call_in(5, fired.append, "after")

        env.call_in(1, cancel_many)
        env.run()
        assert fired == ["after"]
        assert id(env._heap) == heap_id

    def test_no_compaction_below_threshold(self):
        env = Environment()
        for _ in range(10):
            env.call_in(1, lambda: None).cancel()
        # Tombstones dominate but the absolute floor is not reached.
        assert env._cancelled == 10
        assert len(env._heap) == 10

    def test_ordering_with_heavy_cancellation(self):
        """Same-time entries keep scheduling order across cancellations."""
        env = Environment()
        fired = []
        keep = []
        for i in range(300):
            timer = env.call_in(7, fired.append, i)
            if i % 3 == 0:
                timer.cancel()
            else:
                keep.append(i)
        env.run()
        assert fired == keep


class TestRunMirrorsStep:
    """The inlined run() loop and step() must dispatch identically."""

    def _drive(self, use_step: bool):
        env = Environment()
        out = []
        env.call_in(1, out.append, "t1")
        env.call_in(2, out.append, "t2")
        env.call_in(1, out.append, "t1b")
        env.timeout(1, "ev").callbacks.append(lambda e: out.append(e.value))
        cancelled = env.call_in(1, out.append, "never")
        cancelled.cancel()
        if use_step:
            while not env.is_empty():
                env.step()
        else:
            env.run()
        return out, env.processed_count, env.now

    def test_identical_dispatch(self):
        assert self._drive(use_step=True) == self._drive(use_step=False)

    def test_step_on_empty_calendar_raises(self):
        env = Environment()
        with pytest.raises(SimulationError, match="empty calendar"):
            env.step()
