"""Tests for Event lifecycle, Timeout, and condition events."""

import pytest

from repro.errors import SimulationError
from repro.sim import AllOf, AnyOf, ConditionValue, Environment


@pytest.fixture
def env():
    return Environment()


class TestEventLifecycle:
    def test_initial_state(self, env):
        ev = env.event()
        assert ev.pending and not ev.triggered and not ev.processed

    def test_succeed_sets_value(self, env):
        ev = env.event()
        ev.succeed(5)
        assert ev.triggered and ev.value == 5

    def test_processed_after_run(self, env):
        ev = env.event()
        ev.succeed()
        env.run()
        assert ev.processed

    def test_double_succeed_raises(self, env):
        ev = env.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_succeed_after_fail_raises(self, env):
        ev = env.event()
        ev.fail(RuntimeError())
        ev.defused = True
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_value_before_trigger_raises(self, env):
        with pytest.raises(SimulationError):
            env.event().value

    def test_fail_requires_exception(self, env):
        with pytest.raises(TypeError):
            env.event().fail("not an exception")

    def test_callbacks_receive_event(self, env):
        ev = env.event()
        seen = []
        ev.add_callback(seen.append)
        ev.succeed("v")
        env.run()
        assert seen == [ev]

    def test_callback_on_processed_event_raises(self, env):
        ev = env.event()
        ev.succeed()
        env.run()
        with pytest.raises(SimulationError):
            ev.add_callback(lambda e: None)

    def test_unhandled_failure_propagates_from_run(self, env):
        ev = env.event()
        ev.fail(ValueError("lost"))
        with pytest.raises(ValueError, match="lost"):
            env.run()

    def test_defused_failure_does_not_propagate(self, env):
        ev = env.event()
        ev.fail(ValueError("ok"))
        ev.defused = True
        env.run()  # must not raise

    def test_trigger_copies_success(self, env):
        src, dst = env.event(), env.event()
        src.succeed(11)
        dst.trigger(src)
        assert dst.value == 11

    def test_trigger_copies_failure(self, env):
        src, dst = env.event(), env.event()
        exc = RuntimeError("x")
        src.fail(exc)
        src.defused = True
        dst.trigger(src)
        dst.defused = True
        assert dst.failed and dst.value is exc
        env.run()


class TestTimeout:
    def test_fires_after_delay(self, env):
        to = env.timeout(4, value="v")
        env.run()
        assert env.now == 4 and to.value == "v"

    def test_negative_delay_raises(self, env):
        with pytest.raises(SimulationError):
            env.timeout(-1)

    def test_zero_delay(self, env):
        env.timeout(0)
        env.run()
        assert env.now == 0

    def test_timeouts_keep_schedule_order(self, env):
        order = []
        a, b = env.timeout(2), env.timeout(2)
        a.add_callback(lambda e: order.append("a"))
        b.add_callback(lambda e: order.append("b"))
        env.run()
        assert order == ["a", "b"]


class TestConditions:
    def test_all_of_waits_for_all(self, env):
        t1, t2 = env.timeout(1, value=1), env.timeout(5, value=2)
        cond = AllOf(env, [t1, t2])
        env.run(until=cond)
        assert env.now == 5
        assert cond.value == {t1: 1, t2: 2}

    def test_any_of_fires_on_first(self, env):
        t1, t2 = env.timeout(1, value=1), env.timeout(5, value=2)
        cond = AnyOf(env, [t1, t2])
        env.run(until=cond)
        assert env.now == 1
        assert cond.value == {t1: 1}

    def test_operator_and(self, env):
        t1, t2 = env.timeout(2), env.timeout(3)
        env.run(until=t1 & t2)
        assert env.now == 3

    def test_operator_or(self, env):
        t1, t2 = env.timeout(2), env.timeout(3)
        env.run(until=t1 | t2)
        assert env.now == 2

    def test_empty_all_of_fires_immediately(self, env):
        cond = env.all_of([])
        env.run(until=cond)
        assert env.now == 0

    def test_all_of_propagates_failure(self, env):
        ev = env.event()
        cond = env.all_of([env.timeout(1), ev])
        env.call_in(2, ev.fail, RuntimeError("child failed"))
        with pytest.raises(RuntimeError, match="child failed"):
            env.run(until=cond)

    def test_condition_value_mapping(self, env):
        t1 = env.timeout(1, value="a")
        cv = ConditionValue([t1])
        env.run()
        assert t1 in cv
        assert cv[t1] == "a"
        assert list(cv.keys()) == [t1]
        assert list(cv.values()) == ["a"]
        assert dict(cv.items()) == {t1: "a"}
        assert len(cv) == 1
        assert cv.todict() == {t1: "a"}

    def test_condition_value_missing_key(self, env):
        cv = ConditionValue([])
        with pytest.raises(KeyError):
            cv[env.event()]

    def test_cross_environment_mix_raises(self, env):
        other = Environment()
        with pytest.raises(SimulationError):
            AllOf(env, [env.timeout(1), other.timeout(1)])

    def test_all_of_with_pretriggered_events(self, env):
        t1 = env.timeout(0)
        env.run()  # t1 now processed
        t2 = env.timeout(3)
        cond = AllOf(env, [t1, t2])
        env.run(until=cond)
        assert env.now == 3

    def test_nested_conditions(self, env):
        cond = (env.timeout(1) & env.timeout(2)) | env.timeout(10)
        env.run(until=cond)
        assert env.now == 2
