"""Stateful property testing of the kernel's calendar.

A hypothesis state machine schedules, cancels and runs timers in random
interleavings and checks the kernel's core contract: every non-cancelled
timer fires exactly once, in nondecreasing time order, FIFO at ties, and
the clock never moves backwards.
"""

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule
from hypothesis import strategies as st

from repro.sim import Environment


class CalendarMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.env = Environment()
        self.live = {}          # handle id → (due time, seq)
        self.fired = []         # (time, seq) in firing order
        self.cancelled = set()
        self.next_seq = 0

    def _make_callback(self, seq):
        def fire():
            self.fired.append((self.env.now, seq))

        return fire

    @rule(delay=st.integers(0, 50))
    def schedule(self, delay):
        seq = self.next_seq
        self.next_seq += 1
        handle = self.env.call_in(delay, self._make_callback(seq))
        self.live[seq] = (self.env.now + delay, handle)

    @rule(data=st.data())
    def cancel_one(self, data):
        pending = [seq for seq, (_t, h) in self.live.items() if h.active]
        if not pending:
            return
        seq = data.draw(st.sampled_from(pending))
        self.live[seq][1].cancel()
        self.cancelled.add(seq)

    @rule(steps=st.integers(1, 5))
    def run_some(self, steps):
        for _ in range(steps):
            if self.env.is_empty():
                break
            self.env.step()

    @rule()
    def run_all(self):
        self.env.run()

    @invariant()
    def clock_monotone_and_order_correct(self):
        times = [t for t, _s in self.fired]
        assert times == sorted(times)
        # FIFO at equal times: sequence numbers increase within a time bin.
        by_time = {}
        for t, s in self.fired:
            by_time.setdefault(t, []).append(s)
        for seqs in by_time.values():
            assert seqs == sorted(seqs)

    @invariant()
    def no_cancelled_timer_ever_fires(self):
        fired_seqs = {s for _t, s in self.fired}
        assert not (fired_seqs & self.cancelled)

    @invariant()
    def fired_at_their_due_time(self):
        for t, s in self.fired:
            due = self.live[s][0]
            assert t == due

    def teardown(self):
        # Drain and check completeness: everything not cancelled fired once.
        self.env.run()
        fired_seqs = [s for _t, s in self.fired]
        assert len(fired_seqs) == len(set(fired_seqs))
        expected = set(self.live) - self.cancelled
        assert set(fired_seqs) == expected


TestCalendarStateMachine = CalendarMachine.TestCase
TestCalendarStateMachine.settings = settings(
    max_examples=30, stateful_step_count=40, deadline=None)
