"""Failure injection into the kernel: errors must surface, never vanish."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment, Store


class TestTimerFailures:
    def test_exception_in_timer_propagates(self):
        env = Environment()

        def boom():
            raise RuntimeError("timer exploded")

        env.call_in(3, boom)
        with pytest.raises(RuntimeError, match="timer exploded"):
            env.run()
        # The clock stopped at the failure point; the kernel is inspectable.
        assert env.now == 3

    def test_failure_does_not_corrupt_remaining_calendar(self):
        env = Environment()
        ran = []

        def boom():
            raise ValueError("x")

        env.call_in(1, boom)
        env.call_in(2, ran.append, "later")
        with pytest.raises(ValueError):
            env.run()
        env.run()  # resume past the failure
        assert ran == ["later"]


class TestProcessFailures:
    def test_unwaited_process_failure_propagates(self):
        env = Environment()

        def crasher(env):
            yield env.timeout(2)
            raise KeyError("lost")

        env.process(crasher(env))
        with pytest.raises(KeyError):
            env.run()

    def test_waited_process_failure_consumed_by_waiter(self):
        env = Environment()
        caught = []

        def crasher(env):
            yield env.timeout(2)
            raise KeyError("handled")

        def guardian(env):
            try:
                yield env.process(crasher(env))
            except KeyError as exc:
                caught.append(str(exc))

        env.process(guardian(env))
        env.run()
        assert caught == ["'handled'"]

    def test_generator_cleanup_error_propagates(self):
        env = Environment()

        def crasher(env):
            raise ZeroDivisionError("before first yield")
            yield  # pragma: no cover

        env.process(crasher(env))
        with pytest.raises(ZeroDivisionError):
            env.run()


class TestStoreMisuse:
    def test_pending_get_at_exhaustion_is_not_an_error(self):
        """A consumer left waiting when the calendar drains is a deadlock
        the caller can inspect, not a crash."""
        env = Environment()
        store = Store(env)
        got = []

        def consumer(env):
            got.append((yield store.get()))

        proc = env.process(consumer(env))
        env.run()
        assert got == []
        assert proc.is_alive  # visibly stuck, diagnosable

    def test_events_after_resume(self):
        env = Environment()
        store = Store(env)
        got = []

        def consumer(env):
            got.append((yield store.get()))

        env.process(consumer(env))
        env.run()
        store.put("late delivery")
        env.run()
        assert got == ["late delivery"]
