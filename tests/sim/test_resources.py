"""Tests for Resource / PriorityResource / PreemptiveResource."""

import pytest

from repro.errors import SimulationError
from repro.sim import (
    Environment,
    Interrupt,
    Preempted,
    PreemptiveResource,
    PriorityResource,
    Resource,
)


@pytest.fixture
def env():
    return Environment()


def use(env, res, log, name, hold, **req_kwargs):
    """Acquire, hold for `hold`, release; append (name, start, end) to log."""
    with res.request(**req_kwargs) as req:
        yield req
        start = env.now
        yield env.timeout(hold)
        log.append((name, start, env.now))


class TestResource:
    def test_capacity_must_be_positive(self, env):
        with pytest.raises(SimulationError):
            Resource(env, capacity=0)

    def test_serial_access_with_capacity_one(self, env):
        res, log = Resource(env), []
        env.process(use(env, res, log, "a", 5))
        env.process(use(env, res, log, "b", 5))
        env.run()
        assert log == [("a", 0, 5), ("b", 5, 10)]

    def test_parallel_access_with_capacity_two(self, env):
        res, log = Resource(env, capacity=2), []
        for name in "abc":
            env.process(use(env, res, log, name, 4))
        env.run()
        assert log == [("a", 0, 4), ("b", 0, 4), ("c", 4, 8)]

    def test_fifo_queue_order(self, env):
        res, log = Resource(env), []
        for name in "abcd":
            env.process(use(env, res, log, name, 1))
        env.run()
        assert [entry[0] for entry in log] == ["a", "b", "c", "d"]

    def test_count_tracks_users(self, env):
        res = Resource(env, capacity=2)

        def proc(env):
            with res.request() as req:
                yield req
                assert res.count == 1
                yield env.timeout(1)
            assert res.count == 0

        env.process(proc(env))
        env.run()

    def test_context_manager_releases_on_exit(self, env):
        res, log = Resource(env), []

        def holder(env):
            with res.request() as req:
                yield req
                yield env.timeout(2)
            # released here

        env.process(holder(env))
        env.process(use(env, res, log, "waiter", 1))
        env.run()
        assert log == [("waiter", 2, 3)]

    def test_release_queued_request_withdraws(self, env):
        res = Resource(env)
        log = []

        def impatient(env):
            req = res.request()
            result = yield req | env.timeout(1)
            if req not in result:
                res.release(req)
                log.append("gave-up")

        def holder(env):
            with res.request() as req:
                yield req
                yield env.timeout(5)

        env.process(holder(env))
        env.process(impatient(env))
        env.process(use(env, res, log, "later", 1))
        env.run()
        assert "gave-up" in log
        # the withdrawn request never blocks the next waiter
        assert ("later", 5, 6) in log

    def test_double_release_is_benign(self, env):
        res = Resource(env)

        def proc(env):
            req = res.request()
            yield req
            res.release(req)
            res.release(req)

        env.process(proc(env))
        env.run()
        assert res.count == 0


class TestPriorityResource:
    def test_lower_priority_value_served_first(self, env):
        res, log = PriorityResource(env), []

        def submit(env):
            # Occupy the resource, then queue three requests with priorities.
            with res.request(priority=0) as req:
                yield req
                env.process(use(env, res, log, "low", 1, priority=9))
                env.process(use(env, res, log, "high", 1, priority=1))
                env.process(use(env, res, log, "mid", 1, priority=5))
                yield env.timeout(3)

        env.process(submit(env))
        env.run()
        assert [e[0] for e in log] == ["high", "mid", "low"]

    def test_fifo_within_same_priority(self, env):
        res, log = PriorityResource(env), []

        def submit(env):
            with res.request(priority=0) as req:
                yield req
                for name in ("first", "second"):
                    env.process(use(env, res, log, name, 1, priority=3))
                yield env.timeout(2)

        env.process(submit(env))
        env.run()
        assert [e[0] for e in log] == ["first", "second"]

    def test_no_preemption_in_priority_resource(self, env):
        res, log = PriorityResource(env), []
        env.process(use(env, res, log, "holder", 10, priority=9))
        env.process(use(env, res, log, "vip", 1, priority=0))
        env.run()
        assert log == [("holder", 0, 10), ("vip", 10, 11)]


class TestPreemptiveResource:
    def test_higher_priority_preempts(self, env):
        res = PreemptiveResource(env)
        log = []

        def victim(env):
            with res.request(priority=5) as req:
                yield req
                try:
                    yield env.timeout(10)
                    log.append("victim-finished")
                except Interrupt as i:
                    assert isinstance(i.cause, Preempted)
                    assert i.cause.usage_since == 0
                    assert i.cause.resource is res
                    log.append(("preempted", env.now))

        def vip(env):
            yield env.timeout(3)
            with res.request(priority=1) as req:
                yield req
                log.append(("vip-starts", env.now))
                yield env.timeout(2)

        env.process(victim(env))
        env.process(vip(env))
        env.run()
        assert log == [("preempted", 3), ("vip-starts", 3)]

    def test_equal_priority_does_not_preempt(self, env):
        res, log = PreemptiveResource(env), []
        env.process(use(env, res, log, "a", 5, priority=3))
        env.process(use(env, res, log, "b", 5, priority=3))
        env.run()
        assert log == [("a", 0, 5), ("b", 5, 10)]

    def test_preempt_false_waits(self, env):
        res = PreemptiveResource(env)
        log = []

        def victim(env):
            with res.request(priority=5) as req:
                yield req
                yield env.timeout(10)
                log.append(("victim-finished", env.now))

        env.process(victim(env))
        env.process(use(env, res, log, "polite-vip", 1, priority=1, preempt=False))
        env.run()
        assert log == [("victim-finished", 10), ("polite-vip", 10, 11)]

    def test_victim_is_worst_priority_user(self, env):
        res = PreemptiveResource(env, capacity=2)
        log = []

        def victim(env, name, prio):
            with res.request(priority=prio) as req:
                yield req
                try:
                    yield env.timeout(10)
                    log.append((name, "finished"))
                except Interrupt:
                    log.append((name, "preempted"))

        env.process(victim(env, "p3", 3))
        env.process(victim(env, "p7", 7))

        def vip(env):
            yield env.timeout(2)
            with res.request(priority=1) as req:
                yield req
                yield env.timeout(1)

        env.process(vip(env))
        env.run()
        assert ("p7", "preempted") in log
        assert ("p3", "finished") in log

    def test_preempted_transfer_resume_pattern(self, env):
        """The paper's interruptible-communication idiom: remaining time is
        preserved across preemptions, so total service time is unchanged."""
        res = PreemptiveResource(env)
        done = []

        def transfer(env, name, total, prio):
            remaining = total
            while remaining > 0:
                with res.request(priority=prio) as req:
                    yield req
                    start = env.now
                    try:
                        yield env.timeout(remaining)
                        remaining = 0
                    except Interrupt:
                        remaining -= env.now - start
            done.append((name, env.now))

        env.process(transfer(env, "slow", 10, prio=5))

        def burst(env):
            yield env.timeout(2)
            yield env.process(transfer(env, "fast", 3, prio=1))

        env.process(burst(env))
        env.run()
        assert done == [("fast", 5), ("slow", 13)]  # 10 units of service + 3 preempted
