"""Tests for CSV/JSON result export."""

import csv
import io
import json

import pytest

from repro.errors import ExperimentError
from repro.experiments import ExperimentScale, sweep
from repro.experiments.export import (
    CASE_COLUMNS,
    case_rows,
    cases_to_csv,
    write_csv,
    write_json,
)
from repro.platform.generator import TreeGeneratorParams
from repro.protocols import ProtocolConfig


@pytest.fixture(scope="module")
def cases():
    params = TreeGeneratorParams(min_nodes=5, max_nodes=15,
                                 max_comm=10, max_comp=50)
    configs = [ProtocolConfig.interruptible(3),
               ProtocolConfig.non_interruptible()]
    return sweep(configs, ExperimentScale(trees=3, tasks=150), params)


class TestCaseRows:
    def test_one_row_per_tree_and_protocol(self, cases):
        rows = case_rows(cases)
        assert len(rows) == 3 * 2
        assert {row["protocol"] for row in rows} == {
            "IC, FB=3", "non-IC, IB=1"}

    def test_columns_complete(self, cases):
        for row in case_rows(cases):
            assert set(CASE_COLUMNS) <= set(row)

    def test_values_plain_python(self, cases):
        row = case_rows(cases)[0]
        assert isinstance(row["optimal_rate"], float)
        assert isinstance(row["reached"], bool)


class TestCsv:
    def test_round_trip(self, cases):
        buffer = io.StringIO()
        cases_to_csv(buffer, cases)
        buffer.seek(0)
        parsed = list(csv.DictReader(buffer))
        assert len(parsed) == 6
        assert parsed[0]["seed"] == "0"
        assert set(parsed[0]) == set(CASE_COLUMNS)

    def test_none_becomes_empty(self):
        rows = [dict.fromkeys(CASE_COLUMNS, None)]
        buffer = io.StringIO()
        write_csv(buffer, rows)
        data_line = buffer.getvalue().splitlines()[1]
        assert data_line == "," * (len(CASE_COLUMNS) - 1)

    def test_file_target(self, cases, tmp_path):
        path = tmp_path / "cases.csv"
        cases_to_csv(str(path), cases)
        assert path.read_text().startswith("seed,")

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            write_csv(io.StringIO(), [])

    def test_missing_columns_rejected(self):
        with pytest.raises(ExperimentError):
            write_csv(io.StringIO(), [{"seed": 1}])


class TestJson:
    def test_round_trip(self, cases, tmp_path):
        path = tmp_path / "cases.json"
        write_json(str(path), case_rows(cases))
        parsed = json.loads(path.read_text())
        assert len(parsed) == 6
        assert parsed[0]["num_nodes"] >= 5

    def test_buffer_target(self, cases):
        buffer = io.StringIO()
        write_json(buffer, case_rows(cases))
        assert json.loads(buffer.getvalue())

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            write_json(io.StringIO(), [])
