"""Tests for the experiment plumbing (scales, cases, sweeps)."""

import pytest

from repro.errors import ExperimentError
from repro.experiments import ExperimentScale, run_case, sweep
from repro.platform.generator import TreeGeneratorParams
from repro.protocols import ProtocolConfig

SMALL_PARAMS = TreeGeneratorParams(min_nodes=5, max_nodes=20,
                                   max_comm=10, max_comp=60)
TINY = ExperimentScale(trees=3, tasks=120)
CONFIGS = [ProtocolConfig.interruptible(3), ProtocolConfig.non_interruptible()]


class TestScale:
    def test_defaults(self):
        scale = ExperimentScale()
        assert scale.trees == 150 and scale.tasks == 2000

    def test_threshold_scaling(self):
        assert ExperimentScale(tasks=2000).threshold == 60
        assert ExperimentScale(tasks=10_000).threshold == 300

    def test_explicit_threshold_wins(self):
        assert ExperimentScale(tasks=2000, threshold_window=10).threshold == 10

    def test_paper_preset(self):
        paper = ExperimentScale.paper()
        assert paper.trees == 25_000
        assert paper.tasks == 10_000
        assert paper.threshold == 300

    def test_smoke_preset_is_small(self):
        smoke = ExperimentScale.smoke()
        assert smoke.trees <= 30

    def test_with_helpers(self):
        scale = ExperimentScale().with_trees(7).with_tasks(500)
        assert scale.trees == 7 and scale.tasks == 500

    def test_validation(self):
        with pytest.raises(ExperimentError):
            ExperimentScale(trees=0)
        with pytest.raises(ExperimentError):
            ExperimentScale(tasks=1)


class TestRunCase:
    def test_case_contents(self):
        case = run_case(1, SMALL_PARAMS, CONFIGS, TINY)
        assert case.seed == 1
        assert case.num_nodes >= 5
        assert case.optimal_rate > 0
        assert set(case.outcomes) == {c.label for c in CONFIGS}
        outcome = case.outcome(CONFIGS[0])
        assert outcome.makespan > 0
        assert outcome.max_buffers >= 1
        assert outcome.max_held >= 0

    def test_buffer_sampling(self):
        case = run_case(1, SMALL_PARAMS, CONFIGS, TINY,
                        record_buffers=True, sample_counts=(10, 120, 500))
        samples = case.outcome(CONFIGS[1]).buffer_samples
        assert samples[10] >= 0
        assert samples[120] >= samples[10]
        assert samples[500] is None

    def test_reached_property(self):
        case = run_case(1, SMALL_PARAMS, CONFIGS, TINY)
        outcome = case.outcome(CONFIGS[0])
        assert outcome.reached == (outcome.onset is not None)


class TestSweep:
    def test_sweep_count_and_seeds(self):
        cases = sweep(CONFIGS, TINY, SMALL_PARAMS)
        assert [case.seed for case in cases] == [0, 1, 2]

    def test_sweep_deterministic(self):
        a = sweep(CONFIGS, TINY, SMALL_PARAMS)
        b = sweep(CONFIGS, TINY, SMALL_PARAMS)
        assert [(c.seed, c.optimal_rate) for c in a] == [
            (c.seed, c.optimal_rate) for c in b]
        for ca, cb in zip(a, b):
            for label in ca.outcomes:
                assert ca.outcomes[label].makespan == cb.outcomes[label].makespan

    def test_progress_callback(self):
        seen = []
        sweep(CONFIGS, TINY, SMALL_PARAMS,
              progress=lambda done, total: seen.append((done, total)))
        assert seen == [(1, 3), (2, 3), (3, 3)]

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ExperimentError):
            sweep([CONFIGS[0], CONFIGS[0]], TINY, SMALL_PARAMS)
