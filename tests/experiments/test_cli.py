"""Tests for the CLI and the ablation experiments."""

import pytest

from repro.errors import ExperimentError
from repro.experiments import EXPERIMENTS, ablation
from repro.experiments.cli import (build_parser, main, resolve_harness,
                                   resolve_scale)
from repro.experiments.common import ExperimentScale


class TestParser:
    def test_all_experiments_listed(self):
        parser = build_parser()
        args = parser.parse_args(["fig4"])
        assert args.experiment == "fig4"
        for name in EXPERIMENTS:
            parser.parse_args([name])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_scale_resolution(self):
        args = build_parser().parse_args(
            ["fig4", "--scale", "smoke", "--trees", "5"])
        scale = resolve_scale(args)
        assert scale.trees == 5
        assert scale.tasks == ExperimentScale.smoke().tasks

    def test_paper_scale(self):
        args = build_parser().parse_args(["fig4", "--scale", "paper"])
        scale = resolve_scale(args)
        assert scale.trees == 25_000 and scale.threshold == 300

    def test_threshold_override(self):
        args = build_parser().parse_args(["fig4", "--threshold", "42"])
        assert resolve_scale(args).threshold == 42

    def test_seed_override(self):
        args = build_parser().parse_args(["fig4", "--seed", "99"])
        assert resolve_scale(args).base_seed == 99

    def test_warp_flag_threads_through_scale(self):
        args = build_parser().parse_args(["fig4", "--warp"])
        assert resolve_scale(args).warp
        assert not resolve_scale(build_parser().parse_args(["fig4"])).warp

    def test_warp_flag_survives_other_overrides(self):
        args = build_parser().parse_args(
            ["fig4", "--warp", "--seed", "9", "--threshold", "42",
             "--trees", "5"])
        scale = resolve_scale(args)
        assert scale.warp and scale.base_seed == 9
        assert scale.threshold == 42 and scale.trees == 5

    def test_telemetry_off_by_default(self):
        args = build_parser().parse_args(["fig4"])
        assert resolve_scale(args).telemetry is None

    def test_telemetry_flag_attaches_config(self):
        args = build_parser().parse_args(["fig4", "--telemetry"])
        scale = resolve_scale(args)
        assert scale.telemetry is not None
        assert scale.telemetry.sample_dt == 200  # ensemble default

    def test_telemetry_out_implies_telemetry(self):
        args = build_parser().parse_args(
            ["fig4", "--telemetry-out", "runs.jsonl"])
        assert resolve_scale(args).telemetry is not None
        assert args.telemetry_out == "runs.jsonl"

    def test_telemetry_sample_dt_override(self):
        args = build_parser().parse_args(
            ["fig4", "--telemetry", "--telemetry-sample-dt", "25"])
        assert resolve_scale(args).telemetry.sample_dt == 25


class TestResolveHarness:
    def test_defaults_are_resilient_but_uncheckpointed(self):
        args = build_parser().parse_args(["fig4"])
        harness = resolve_harness(args)
        assert harness.checkpoint_dir is None
        assert not harness.resume
        assert harness.max_retries == 2
        assert harness.seed_timeout is None

    def test_flags_carry_through(self, tmp_path):
        args = build_parser().parse_args(
            ["fig4", "--checkpoint-dir", str(tmp_path), "--resume",
             "--max-retries", "5", "--seed-timeout", "30"])
        harness = resolve_harness(args)
        assert harness.checkpoint_dir == str(tmp_path)
        assert harness.resume
        assert harness.max_retries == 5
        assert harness.seed_timeout == 30.0

    def test_resume_without_checkpoint_dir_rejected(self):
        args = build_parser().parse_args(["fig4", "--resume"])
        with pytest.raises(ExperimentError, match="checkpoint_dir"):
            resolve_harness(args)


class TestMain:
    def test_fig7_runs_and_prints(self, capsys):
        assert main(["fig7"]) == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out
        assert "completed in" in out

    def test_out_file(self, tmp_path, capsys):
        target = tmp_path / "report.txt"
        assert main(["fig7", "--out", str(target)]) == 0
        assert "Figure 7" in target.read_text()

    def test_coverage_summary_on_stderr_not_stdout(self, capsys):
        assert main(["fig7"]) == 0
        captured = capsys.readouterr()
        assert "coverage:" in captured.err
        assert "coverage:" not in captured.out

    def test_telemetry_summary_and_jsonl_export(self, tmp_path, capsys):
        from repro.telemetry import load_jsonl

        target = tmp_path / "runs.jsonl"
        assert main(["fig4", "--scale", "smoke", "--trees", "2",
                     "--tasks", "200", "--telemetry", "--telemetry-out",
                     str(target)]) == 0
        out = capsys.readouterr().out
        assert "Telemetry ensemble summary" in out
        snapshots = load_jsonl(str(target))
        assert snapshots
        assert all(s.counters["completed"] == 200 for s in snapshots)

    def test_warp_report_identical_to_exact(self, capsys):
        assert main(["fig7"]) == 0
        exact = capsys.readouterr().out
        assert main(["fig7", "--warp"]) == 0
        warped = capsys.readouterr().out
        import re

        strip = lambda text: re.sub(r"completed in [0-9.]+s", "", text)
        assert strip(warped) == strip(exact)

    def test_profile_prints_stats_to_stderr(self, capsys):
        assert main(["fig7", "--profile"]) == 0
        captured = capsys.readouterr()
        assert "Ordered by: cumulative time" in captured.err
        assert "Ordered by: cumulative time" not in captured.out
        assert "Figure 7" in captured.out

    def test_profile_forces_single_worker(self, capsys):
        assert main(["fig7", "--profile", "--workers", "4"]) == 0
        assert "--profile forces --workers 1" in capsys.readouterr().err

    def test_checkpointed_run_then_resume(self, tmp_path, capsys):
        ckpt = str(tmp_path / "ckpt")
        assert main(["fig7", "--checkpoint-dir", ckpt]) == 0
        first = capsys.readouterr().out
        assert main(["fig7", "--checkpoint-dir", ckpt, "--resume"]) == 0
        captured = capsys.readouterr()
        assert "3 resumed from checkpoint" in captured.err
        # Identical stdout report, timing lines aside.
        import re

        strip = lambda text: re.sub(r"completed in [0-9.]+s", "", text)
        assert strip(captured.out) == strip(first)


class TestPriorityAblation:
    def test_bandwidth_centric_at_least_as_good(self):
        from repro.platform.generator import TreeGeneratorParams

        scale = ExperimentScale(trees=5, tasks=800)
        result = ablation.priority_rules(
            scale, TreeGeneratorParams(min_nodes=10, max_nodes=40))
        bw = result.mean_normalized_rate["non-IC, FB=3"]
        cc = result.mean_normalized_rate["non-IC, FB=3 [compute-centric]"]
        fifo = result.mean_normalized_rate["non-IC, FB=3 [fifo]"]
        assert bw >= cc - 0.02
        assert bw >= fifo - 0.02
        text = ablation.format_priority_result(result)
        assert "Ablation" in text


class TestOverlayAblation:
    def test_strategies_compared(self):
        result = ablation.overlay_strategies(
            ExperimentScale(trees=5, tasks=2), hosts=20)
        assert set(result.mean_relative_rate) == {
            "bfs", "shortest-path", "mst", "random"}
        for value in result.mean_relative_rate.values():
            assert 0 < value <= 1.0 + 1e-9
        assert sum(result.wins.values()) == 5
        text = ablation.format_overlay_result(result)
        assert "overlay" in text


class TestResolveScaleMatrix:
    """Every preset × every override combination resolves predictably."""

    PRESETS = {
        "default": ExperimentScale(),
        "smoke": ExperimentScale.smoke(),
        "paper": ExperimentScale.paper(),
    }

    @pytest.mark.parametrize("preset", sorted(PRESETS))
    @pytest.mark.parametrize("overrides", [
        [],
        ["--trees", "7"],
        ["--tasks", "123"],
        ["--seed", "42"],
        ["--threshold", "17"],
        ["--trees", "7", "--tasks", "123", "--seed", "42",
         "--threshold", "17"],
    ], ids=["none", "trees", "tasks", "seed", "threshold", "all"])
    def test_matrix(self, preset, overrides):
        base = self.PRESETS[preset]
        args = build_parser().parse_args(["fig4", "--scale", preset]
                                         + overrides)
        scale = resolve_scale(args)
        assert scale.trees == (7 if "--trees" in overrides else base.trees)
        assert scale.tasks == (123 if "--tasks" in overrides else base.tasks)
        assert scale.base_seed == (42 if "--seed" in overrides
                                   else base.base_seed)
        if "--threshold" in overrides:
            assert scale.threshold == 17
        else:
            # With no explicit window the threshold re-derives from the
            # (possibly overridden) task count.
            expected = ExperimentScale(
                trees=scale.trees, tasks=scale.tasks,
                threshold_window=base.threshold_window)
            assert scale.threshold == expected.threshold


class TestSvgGating:
    """SVG must only be rendered (and repro.viz imported) with --svg."""

    def _drop_viz(self):
        import sys

        for name in [m for m in sys.modules if m.startswith("repro.viz")]:
            del sys.modules[name]

    def test_no_svg_flag_skips_viz_entirely(self, capsys):
        import sys

        self._drop_viz()
        assert main(["fig7"]) == 0
        assert not any(m.startswith("repro.viz") for m in sys.modules)
        assert "[figure written" not in capsys.readouterr().out

    def test_svg_flag_renders_and_writes(self, tmp_path, capsys):
        assert main(["fig7", "--svg", str(tmp_path)]) == 0
        svg = (tmp_path / "fig7.svg").read_text()
        assert svg.lstrip().startswith("<svg")
        assert "[figure written" in capsys.readouterr().out

    def test_runners_accept_svg_keyword(self):
        scale = ExperimentScale(trees=5, tasks=100)
        report, svg = EXPERIMENTS["fig7"](scale, workers=1, svg=False)
        assert "Figure 7" in report and svg is None
        report, svg = EXPERIMENTS["fig7"](scale, workers=1, svg=True)
        assert svg is not None and "<svg" in svg


class TestFig3Workers:
    def test_parallel_matches_serial(self):
        from repro.experiments import fig3

        scale = ExperimentScale(trees=5, tasks=300)
        serial = fig3.run(scale, candidates=4, workers=1)
        parallel = fig3.run(scale, candidates=4, workers=2)
        assert serial == parallel

    def test_progress_reported(self):
        from repro.experiments import fig3

        calls = []
        scale = ExperimentScale(trees=5, tasks=300)
        fig3.run(scale, candidates=4,
                 progress=lambda done, total: calls.append((done, total)))
        assert calls and calls[0] == (1, 4)
        assert all(total == 4 for _done, total in calls)

    def test_bad_workers_rejected(self):
        from repro.errors import ExperimentError
        from repro.experiments import fig3

        with pytest.raises(ExperimentError, match="workers"):
            fig3.run(ExperimentScale(trees=5, tasks=300), workers=0)
