"""Tests for the CLI and the ablation experiments."""

import pytest

from repro.experiments import EXPERIMENTS, ablation
from repro.experiments.cli import build_parser, main, resolve_scale
from repro.experiments.common import ExperimentScale


class TestParser:
    def test_all_experiments_listed(self):
        parser = build_parser()
        args = parser.parse_args(["fig4"])
        assert args.experiment == "fig4"
        for name in EXPERIMENTS:
            parser.parse_args([name])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_scale_resolution(self):
        args = build_parser().parse_args(
            ["fig4", "--scale", "smoke", "--trees", "5"])
        scale = resolve_scale(args)
        assert scale.trees == 5
        assert scale.tasks == ExperimentScale.smoke().tasks

    def test_paper_scale(self):
        args = build_parser().parse_args(["fig4", "--scale", "paper"])
        scale = resolve_scale(args)
        assert scale.trees == 25_000 and scale.threshold == 300

    def test_threshold_override(self):
        args = build_parser().parse_args(["fig4", "--threshold", "42"])
        assert resolve_scale(args).threshold == 42

    def test_seed_override(self):
        args = build_parser().parse_args(["fig4", "--seed", "99"])
        assert resolve_scale(args).base_seed == 99


class TestMain:
    def test_fig7_runs_and_prints(self, capsys):
        assert main(["fig7"]) == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out
        assert "completed in" in out

    def test_out_file(self, tmp_path, capsys):
        target = tmp_path / "report.txt"
        assert main(["fig7", "--out", str(target)]) == 0
        assert "Figure 7" in target.read_text()


class TestPriorityAblation:
    def test_bandwidth_centric_at_least_as_good(self):
        from repro.platform.generator import TreeGeneratorParams

        scale = ExperimentScale(trees=5, tasks=800)
        result = ablation.priority_rules(
            scale, TreeGeneratorParams(min_nodes=10, max_nodes=40))
        bw = result.mean_normalized_rate["non-IC, FB=3"]
        cc = result.mean_normalized_rate["non-IC, FB=3 [compute-centric]"]
        fifo = result.mean_normalized_rate["non-IC, FB=3 [fifo]"]
        assert bw >= cc - 0.02
        assert bw >= fifo - 0.02
        text = ablation.format_priority_result(result)
        assert "Ablation" in text


class TestOverlayAblation:
    def test_strategies_compared(self):
        result = ablation.overlay_strategies(graphs=5, hosts=20)
        assert set(result.mean_relative_rate) == {
            "bfs", "shortest-path", "mst", "random"}
        for value in result.mean_relative_rate.values():
            assert 0 < value <= 1.0 + 1e-9
        assert sum(result.wins.values()) == 5
        text = ablation.format_overlay_result(result)
        assert "overlay" in text
