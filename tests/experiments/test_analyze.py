"""Tests for the analyze/simulate tree commands and the parallel sweep."""

import pytest

from repro.errors import ExperimentError
from repro.experiments import ExperimentScale, sweep
from repro.experiments.analyze import (
    PROTOCOL_PRESETS,
    analyze_tree,
    load_tree,
    simulate_tree,
)
from repro.experiments.cli import main
from repro.platform import figure1_tree, to_json
from repro.platform.generator import TreeGeneratorParams
from repro.protocols import ProtocolConfig


@pytest.fixture
def tree_file(tmp_path):
    path = tmp_path / "platform.json"
    path.write_text(to_json(figure1_tree()))
    return str(path)


class TestLoadTree:
    def test_round_trip(self, tree_file):
        assert load_tree(tree_file) == figure1_tree()

    def test_missing_file(self):
        with pytest.raises(ExperimentError):
            load_tree("/nonexistent/platform.json")


class TestAnalyze:
    def test_report_contents(self):
        report = analyze_tree(figure1_tree())
        assert "optimal rate 0.91667" in report
        assert "starved" in report          # P2/P3/... starve
        assert "uplink-bound" in report
        assert "Best single-resource upgrades" in report
        # The most valuable upgrade on Figure 1 is P5's link.
        upgrades_section = report.split("Best single-resource upgrades")[1]
        first_row = upgrades_section.splitlines()[4]
        assert "link of P5" in first_row


class TestSimulate:
    def test_report_contents(self):
        report = simulate_tree(figure1_tree(), "ic3", 800)
        assert "IC, FB=3" in report
        assert "normalized" in report

    def test_all_presets_run(self):
        for name in PROTOCOL_PRESETS:
            report = simulate_tree(figure1_tree(), name, 200)
            assert "makespan" in report

    def test_unknown_protocol(self):
        with pytest.raises(ExperimentError):
            simulate_tree(figure1_tree(), "warp-drive", 100)

    def test_tiny_task_count_rejected(self):
        with pytest.raises(ExperimentError):
            simulate_tree(figure1_tree(), "ic3", 1)


class TestCliIntegration:
    def test_analyze_command(self, tree_file, capsys):
        assert main(["analyze", "--tree", tree_file]) == 0
        assert "Platform analysis" in capsys.readouterr().out

    def test_simulate_command(self, tree_file, capsys):
        assert main(["simulate", "--tree", tree_file, "--protocol", "ic1",
                     "--tasks", "300"]) == 0
        assert "IC, FB=1" in capsys.readouterr().out

    def test_missing_tree_flag(self, capsys):
        with pytest.raises(SystemExit):
            main(["analyze"])

    def test_out_file(self, tree_file, tmp_path, capsys):
        target = tmp_path / "report.txt"
        main(["analyze", "--tree", tree_file, "--out", str(target)])
        assert "Platform analysis" in target.read_text()


class TestParallelSweep:
    def test_parallel_equals_serial(self):
        params = TreeGeneratorParams(min_nodes=5, max_nodes=15,
                                     max_comm=10, max_comp=50)
        scale = ExperimentScale(trees=4, tasks=120)
        configs = [ProtocolConfig.interruptible(2)]
        serial = sweep(configs, scale, params)
        parallel = sweep(configs, scale, params, workers=2)
        assert [(c.seed, c.optimal_rate, c.outcomes) for c in serial] == \
               [(c.seed, c.optimal_rate, c.outcomes) for c in parallel]

    def test_progress_in_parallel_mode(self):
        params = TreeGeneratorParams(min_nodes=5, max_nodes=10,
                                     max_comm=5, max_comp=20)
        seen = []
        sweep([ProtocolConfig.interruptible(1)],
              ExperimentScale(trees=3, tasks=60), params,
              workers=2, progress=lambda d, t: seen.append((d, t)))
        assert seen == [(1, 3), (2, 3), (3, 3)]

    def test_invalid_workers(self):
        with pytest.raises(ExperimentError):
            sweep([ProtocolConfig.interruptible(1)],
                  ExperimentScale(trees=2, tasks=60), workers=0)
