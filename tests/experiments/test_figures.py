"""Smoke + semantics tests for the per-figure experiment modules.

These run micro-scale ensembles (seconds) and assert the structural and
qualitative properties each table/figure depends on, not the paper's exact
percentages (benchmarks regenerate those at larger scales).
"""

import pytest

from repro.experiments import ExperimentScale, fig3, fig4, fig5, fig6, fig7, table1, table2
from repro.experiments.fig4 import FIG4_CONFIGS
from repro.platform.generator import TreeGeneratorParams

#: Small trees keep micro-ensembles fast while still exercising hierarchy.
MICRO_PARAMS = TreeGeneratorParams(min_nodes=10, max_nodes=60)
MICRO = ExperimentScale(trees=6, tasks=900)


class TestFig3:
    def test_three_series_with_samples(self):
        result = fig3.run(MICRO, MICRO_PARAMS, candidates=8, sample_points=10)
        assert len(result.series) == 3
        seeds = [s.seed for s in result.series]
        assert len(set(seeds)) == 3
        for series in result.series:
            assert len(series.samples) >= 2
            windows = [w for w, _ in series.samples]
            assert windows == sorted(windows)
            for _w, rate in series.samples:
                assert rate >= 0

    def test_candidate_floor(self):
        with pytest.raises(Exception):
            fig3.run(MICRO, MICRO_PARAMS, candidates=2)

    def test_format(self):
        result = fig3.run(MICRO, MICRO_PARAMS, candidates=6, sample_points=6)
        text = fig3.format_result(result)
        assert "Figure 3" in text
        assert "onset" in text


class TestFig4:
    def test_structure_and_monotonicity(self):
        result = fig4.run(MICRO, MICRO_PARAMS)
        assert set(result.cdf) == {c.label for c in FIG4_CONFIGS}
        for label, series in result.cdf.items():
            assert len(series) == len(result.grid)
            assert all(a <= b for a, b in zip(series, series[1:]))
            assert series[-1] == pytest.approx(result.reached[label])

    def test_ic_beats_non_ic(self):
        result = fig4.run(MICRO, MICRO_PARAMS)
        assert result.reached["IC, FB=3"] >= result.reached["non-IC, IB=1"]

    def test_format(self):
        result = fig4.run(MICRO, MICRO_PARAMS)
        text = fig4.format_result(result)
        assert "Figure 4" in text and "reached (paper)" in text


class TestTable1:
    def test_from_fig4_cases(self):
        fig4_result = fig4.run(MICRO, MICRO_PARAMS)
        result = table1.from_cases(fig4_result.cases, MICRO)
        non_ic = result.percentages["non-IC, IB=1"]
        values = [non_ic[b] for b in table1.BUFFER_BUDGETS]
        assert all(a <= b for a, b in zip(values, values[1:]))  # monotone in n
        assert result.non_ic_unbounded >= values[-1]
        ic3 = result.percentages["IC, FB=3"]
        assert ic3[3] is not None and ic3[1] is None

    def test_format(self):
        result = table1.run(MICRO, MICRO_PARAMS)
        text = table1.format_result(result)
        assert "Table 1" in text and "unbounded" in text


class TestFig5:
    def test_all_classes_and_configs_present(self):
        scale = ExperimentScale(trees=3, tasks=600)
        result = fig5.run(scale, MICRO_PARAMS)
        for x in fig5.X_CLASSES:
            for config in fig5.FIG5_CONFIGS:
                assert (x, config.label) in result.reached
                series = result.cdf[(x, config.label)]
                assert all(a <= b for a, b in zip(series, series[1:]))

    def test_format(self):
        scale = ExperimentScale(trees=3, tasks=600)
        text = fig5.format_result(fig5.run(scale, MICRO_PARAMS))
        assert "Figure 5" in text


class TestTable2:
    def test_sample_count_scaling(self):
        assert table2.sample_counts_for(4000) == (100, 1000, 4000)
        assert table2.sample_counts_for(2000) == (50, 500, 2000)

    def test_medians_monotone_in_task_count(self):
        scale = ExperimentScale(trees=4, tasks=800)
        result = table2.run(scale, MICRO_PARAMS)
        for x in fig5.X_CLASSES:
            meds = [m for m in result.medians[x] if m is not None]
            assert all(a <= b for a, b in zip(meds, meds[1:]))
            assert result.maxima[x] <= result.pool_maxima[x]

    def test_format(self):
        scale = ExperimentScale(trees=3, tasks=600)
        text = table2.format_result(table2.run(scale, MICRO_PARAMS))
        assert "Table 2" in text and "pool" in text


class TestFig6:
    def test_series_shapes(self):
        result = fig6.run(MICRO, MICRO_PARAMS)
        assert set(result.node_series) == {
            "all", "used, non-IC, IB=1", "used, IC, FB=3"}
        n = MICRO.trees
        for series in result.node_series.values():
            assert len(series) == n
        # Used sub-trees can never exceed the full tree.
        for label in ("used, non-IC, IB=1", "used, IC, FB=3"):
            for used, total in zip(result.node_series[label],
                                   result.node_series["all"]):
                assert used <= total
            for used, total in zip(result.depth_series[label],
                                   result.depth_series["all"]):
                assert used <= total

    def test_pdf_helpers(self):
        result = fig6.run(ExperimentScale(trees=4, tasks=600), MICRO_PARAMS)
        lefts, fractions = result.node_pdf("all", bin_width=10)
        assert fractions.sum() == pytest.approx(1.0)
        lefts, fractions = result.depth_pdf("all", bin_width=2)
        assert fractions.sum() == pytest.approx(1.0)

    def test_format(self):
        text = fig6.format_result(fig6.run(ExperimentScale(trees=4, tasks=600),
                                           MICRO_PARAMS))
        assert "Figure 6" in text


class TestFig7:
    def test_scenarios_and_tracking(self):
        result = fig7.run(ExperimentScale(trees=1, tasks=600))
        assert len(result.scenarios) == 3
        base, contention, relief = result.scenarios
        assert base.optimal_before == base.optimal_after
        assert contention.optimal_after < contention.optimal_before
        assert relief.optimal_after > relief.optimal_before
        # The protocol must track each new optimum within a few percent.
        for scenario in result.scenarios:
            assert scenario.tracking_error < 0.05
        # Curves are cumulative.
        for scenario in result.scenarios:
            times = [t for t, _n in scenario.curve]
            counts = [n for _t, n in scenario.curve]
            assert times == sorted(times)
            assert counts == sorted(counts)

    def test_format(self):
        text = fig7.format_result(fig7.run(ExperimentScale(trees=1, tasks=600)))
        assert "Figure 7" in text and "tracking error" in text

    def test_workers_match_serial(self):
        scale = ExperimentScale(trees=1, tasks=600)
        assert fig7.run(scale) == fig7.run(scale, workers=2)

    def test_progress_reported(self):
        calls = []
        fig7.run(ExperimentScale(trees=1, tasks=600),
                 progress=lambda done, total: calls.append((done, total)))
        assert calls == [(1, 3), (2, 3), (3, 3)]
