"""Unit tests for the ablation experiments (decay, churn)."""

import pytest

from repro.experiments import ExperimentScale, ablation
from repro.platform.generator import TreeGeneratorParams

MICRO_PARAMS = TreeGeneratorParams(min_nodes=10, max_nodes=50)
MICRO = ExperimentScale(trees=4, tasks=900)


class TestDecayAblation:
    def test_variants_and_counters(self):
        result = ablation.buffer_decay_ablation(MICRO, MICRO_PARAMS)
        assert set(result.reached) == {"non-IC, IB=1", "non-IC, IB=1 +decay"}
        assert result.decayed["non-IC, IB=1"] == 0
        assert result.decayed["non-IC, IB=1 +decay"] >= 0
        for pool in result.mean_max_pool.values():
            assert pool >= 1

    def test_format(self):
        result = ablation.buffer_decay_ablation(MICRO, MICRO_PARAMS)
        text = ablation.format_decay_result(result)
        assert "buffer decay" in text
        assert "+decay" in text

    def test_progress_callback(self):
        seen = []
        ablation.buffer_decay_ablation(
            ExperimentScale(trees=2, tasks=300), MICRO_PARAMS,
            progress=lambda d, t: seen.append((d, t)))
        assert seen == [(1, 2), (2, 2)]


class TestChurnResilience:
    def test_conservation_and_norms(self):
        result = ablation.churn_resilience(MICRO, MICRO_PARAMS)
        assert result.all_conserved
        assert result.all_departed
        assert len(result.join_norms) == MICRO.trees
        assert 0 < result.mean_join_norm < 2
        assert 0 <= result.within_ten_percent <= MICRO.trees

    def test_format(self):
        result = ablation.churn_resilience(
            ExperimentScale(trees=2, tasks=600), MICRO_PARAMS)
        text = ablation.format_churn_result(result)
        assert "churn resilience" in text
        assert "conserved" in text


class TestAblationWorkers:
    """workers=N must reproduce the serial ablation results exactly."""

    SMALL = ExperimentScale(trees=3, tasks=600)

    def test_priority_rules_parallel_matches_serial(self):
        serial = ablation.priority_rules(self.SMALL, MICRO_PARAMS)
        parallel = ablation.priority_rules(self.SMALL, MICRO_PARAMS, workers=2)
        assert serial == parallel

    def test_decay_parallel_matches_serial(self):
        serial = ablation.buffer_decay_ablation(self.SMALL, MICRO_PARAMS)
        parallel = ablation.buffer_decay_ablation(
            self.SMALL, MICRO_PARAMS, workers=2)
        assert serial == parallel

    def test_churn_parallel_matches_serial(self):
        serial = ablation.churn_resilience(self.SMALL, MICRO_PARAMS)
        parallel = ablation.churn_resilience(
            self.SMALL, MICRO_PARAMS, workers=2)
        assert serial == parallel

    def test_faults_parallel_matches_serial(self):
        serial = ablation.fault_recovery(self.SMALL, MICRO_PARAMS)
        parallel = ablation.fault_recovery(
            self.SMALL, MICRO_PARAMS, workers=2)
        assert serial == parallel

    def test_overlays_parallel_matches_serial(self):
        scale = ExperimentScale(trees=4, tasks=2)
        serial = ablation.overlay_strategies(scale, hosts=15)
        parallel = ablation.overlay_strategies(scale, hosts=15, workers=2)
        assert serial == parallel

    def test_bad_workers_rejected(self):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError, match="workers"):
            ablation.priority_rules(self.SMALL, MICRO_PARAMS, workers=0)
