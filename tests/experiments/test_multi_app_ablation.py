"""The multi-application allocator ablation and its CLI surface."""

import pytest

from repro.errors import ExperimentError
from repro.experiments import ablation
from repro.experiments.cli import build_parser, main
from repro.experiments.common import ExperimentScale
from repro.platform.generator import TreeGeneratorParams

SMALL = TreeGeneratorParams(min_nodes=12, max_nodes=18)
SCALE = ExperimentScale(trees=2, tasks=120)


class TestMultiAppAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return ablation.multi_app(SCALE, SMALL)

    def test_shape(self, result):
        assert result.apps == 2
        assert result.allocators == ("selfish", "maxmin")
        for allocator in result.allocators:
            assert len(result.mean_app_rates[allocator]) == 2
            assert 0 < result.mean_jain[allocator] <= 1.0

    def test_table(self, result):
        text = ablation.format_multi_app_result(result)
        assert "selfish" in text and "maxmin" in text
        assert "Jain index" in text and "price of anarchy" in text
        assert "app0 rate" in text and "app1 rate" in text

    def test_custom_allocators(self):
        result = ablation.multi_app(SCALE, SMALL, allocators=("fairshare",))
        assert result.allocators == ("fairshare",)

    def test_needs_two_apps(self):
        with pytest.raises(ExperimentError, match="apps"):
            ablation.multi_app(SCALE, SMALL, apps=1)


class TestCLI:
    def test_apps_experiment_listed(self):
        args = build_parser().parse_args(["apps"])
        assert args.experiment == "apps"
        assert args.apps is None and args.allocator is None

    def test_allocator_choices(self):
        args = build_parser().parse_args(
            ["apps", "--apps", "3", "--allocator", "selfish",
             "--allocator", "fairshare"])
        assert args.apps == 3
        assert args.allocator == ["selfish", "fairshare"]
        with pytest.raises(SystemExit):
            build_parser().parse_args(["apps", "--allocator", "greedy"])

    def test_apps_run_end_to_end(self, capsys):
        assert main(["apps", "--trees", "2", "--tasks", "60"]) == 0
        out = capsys.readouterr().out
        assert "selfish" in out and "maxmin" in out
        assert "price of anarchy" in out

    def test_allocator_flag_narrows_the_table(self, capsys):
        assert main(["apps", "--trees", "2", "--tasks", "60",
                     "--allocator", "maxmin"]) == 0
        out = capsys.readouterr().out
        assert "maxmin" in out and "selfish" not in out

    def test_simulate_single_allocator_only(self, tmp_path):
        from repro.platform.generator import generate_tree
        from repro.platform.serialize import to_json

        tree_path = tmp_path / "t.json"
        tree_path.write_text(to_json(generate_tree(SMALL, seed=3)))
        with pytest.raises(SystemExit, match="single"):
            main(["simulate", "--tree", str(tree_path), "--tasks", "60",
                  "--apps", "2", "--allocator", "maxmin",
                  "--allocator", "selfish"])

    def test_simulate_with_apps_reports_fairness(self, tmp_path, capsys):
        from repro.platform.generator import generate_tree
        from repro.platform.serialize import to_json

        tree_path = tmp_path / "t.json"
        tree_path.write_text(to_json(generate_tree(SMALL, seed=3)))
        assert main(["simulate", "--tree", str(tree_path), "--tasks", "60",
                     "--apps", "2", "--allocator", "selfish"]) == 0
        out = capsys.readouterr().out
        assert "Jain fairness index" in out
        assert "app0 steady rate" in out and "app1 steady rate" in out
