"""Per-app bandwidth allocators under multi-application edge cases.

The selfish allocator is strict-priority progressive filling: flows are
grouped by priority tag, each class max-min filled against what the
higher classes left.  Equal priorities therefore degenerate to plain
max-min — the deterministic tie-break — and the PR 6 work-conservation
counterexample separates ``maxmin`` from ``fairshare`` even when the
flows belong to different applications.
"""

from fractions import Fraction as F

from repro.apps import Application, MultiAppEngine
from repro.platform.contention import (fair_share_rates, max_min_rates,
                                       selfish_rates)
from repro.platform.generator import TreeGeneratorParams, generate_tree
from repro.protocols import ProtocolConfig

SMALL = TreeGeneratorParams(min_nodes=12, max_nodes=18)
CONFIG = ProtocolConfig.interruptible(3)


class TestSelfishRates:
    def test_strict_priority_starves_the_lower_class(self):
        flows = {("app0", 1): (0,), ("app1", 1): (0,)}
        rates = selfish_rates(flows, {0: F(1)},
                              {("app0", 1): (0, 0), ("app1", 1): (1, 1)})
        assert rates == {("app0", 1): F(1), ("app1", 1): F(0)}

    def test_equal_priorities_degenerate_to_maxmin(self):
        flows = {"a": (0,), "b": (0,), "c": (0, 1)}
        caps = {0: F(3), 1: F(1)}
        tagged = {fid: (5, 0) for fid in flows}
        assert selfish_rates(flows, caps, tagged) == max_min_rates(flows, caps)

    def test_untagged_flows_fill_last(self):
        flows = {"tagged": (0,), "untagged": (0,)}
        rates = selfish_rates(flows, {0: F(4)}, {"tagged": (0, 0)})
        assert rates == {"tagged": F(4), "untagged": F(0)}

    def test_lower_class_takes_the_leftovers(self):
        # High priority is bottlenecked elsewhere; low mops up the rest.
        flows = {"hi": (0, 1), "lo": (0,)}
        rates = selfish_rates(flows, {0: F(4), 1: F(1)},
                              {"hi": (0, 0), "lo": (1, 0)})
        assert rates == {"hi": F(1), "lo": F(3)}

    def test_no_priorities_is_plain_maxmin(self):
        flows = {"a": (0,), "b": (0,)}
        caps = {0: F(1)}
        assert selfish_rates(flows, caps) == max_min_rates(flows, caps)


def test_maxmin_vs_fairshare_disagree_across_apps():
    """The PR 6 work-conservation counterexample, with app-labeled flows:
    max-min hands app0 the bandwidth app1's bottleneck cannot use,
    fair share leaves it idle."""
    flows = {("app0", 0): (1,), ("app1", 0): (1, 0)}
    caps = {0: F(1), 1: F(4)}
    assert max_min_rates(flows, caps) == {("app0", 0): F(3),
                                          ("app1", 0): F(1)}
    assert fair_share_rates(flows, caps) == {("app0", 0): F(2),
                                             ("app1", 0): F(1)}


class TestEngineTieBreaks:
    def test_identical_priorities_tie_break_by_app_index(self):
        """Two same-priority apps on the same saturated links: the
        selfish allocator's ``(priority, index)`` tag breaks the tie
        deterministically in favour of the earlier application."""
        tree = generate_tree(SMALL, seed=5)
        apps = [Application(60, name="a"), Application(60, name="b")]
        result = MultiAppEngine(tree, list(apps), CONFIG,
                                allocator="selfish").run()
        assert result.apps[0].makespan <= result.apps[1].makespan

    def test_identical_priorities_are_deterministic(self):
        tree = generate_tree(SMALL, seed=5)
        runs = [
            MultiAppEngine(
                tree, [Application(60, name="a"), Application(60, name="b")],
                CONFIG, allocator="selfish").run().fingerprint()
            for _ in range(2)
        ]
        assert runs[0] == runs[1]

    def test_distinct_priorities_change_the_run(self):
        tree = generate_tree(SMALL, seed=5)
        flat = MultiAppEngine(
            tree, [Application(60), Application(60)], CONFIG,
            allocator="selfish").run()
        tiered = MultiAppEngine(
            tree, [Application(60, priority=0), Application(60, priority=1)],
            CONFIG, allocator="selfish").run()
        assert flat.fingerprint() != tiered.fingerprint()
        # Priority 0 sorts first: the favoured app finishes no later.
        assert tiered.apps[0].makespan <= tiered.apps[1].makespan


def test_zero_task_app_releases_all_bandwidth():
    """An application with an empty bag claims no CPU share and starts
    no flows: its partner runs exactly as if it were alone."""
    tree = generate_tree(SMALL, seed=9)
    solo = MultiAppEngine(tree, 80, CONFIG).run()
    paired = MultiAppEngine(
        tree, [Application(80, name="real"), Application(0, name="idle")],
        CONFIG, allocator="maxmin").run()
    assert paired.makespan == solo.makespan
    assert paired.apps[1].completion_times == ()
    assert paired.apps[1].steady_rate == 0
