"""Multi-application runs end to end through the public front door."""

import pytest

from repro import simulate
from repro.apps import Application, MultiAppEngine
from repro.apps.engine import _AppLane
from repro.errors import ProtocolError
from repro.platform.faults import CrashEvent, FaultSchedule
from repro.platform.generator import TreeGeneratorParams, generate_tree
from repro.protocols import ProtocolConfig
from repro.protocols.engine import ProtocolEngine
from repro.protocols.graph_engine import GraphProtocolEngine
from repro.sim.warp import REASON_MULTI_APP, STAND_DOWN_REASONS

SMALL = TreeGeneratorParams(min_nodes=12, max_nodes=18)
CONFIG = ProtocolConfig.interruptible(3)


def _two_apps(tasks=60):
    return [Application(tasks, name="alpha", priority=0),
            Application(tasks, name="beta", priority=1)]


class TestTwoAppRun:
    @pytest.fixture(scope="class")
    def result(self):
        tree = generate_tree(SMALL, seed=11)
        return simulate(tree, _two_apps(), CONFIG, allocator="selfish")

    def test_per_app_slices(self, result):
        assert [a.name for a in result.apps] == ["alpha", "beta"]
        assert all(len(a.completion_times) == 60 for a in result.apps)
        assert all(a.steady_rate > 0 for a in result.apps)

    def test_merged_result_is_consistent(self, result):
        assert len(result.completion_times) == 120
        assert result.num_tasks == 120
        assert result.makespan == max(a.makespan for a in result.apps)
        assert sum(result.per_node_computed) == 120

    def test_fairness_metrics(self, result):
        assert 0 < result.jain_index <= 1.0
        assert result.cooperative_rate > 0
        assert result.price_of_anarchy is not None
        assert result.price_of_anarchy > 0

    def test_fingerprint_covers_app_slices(self, result):
        # N > 1 folds per-app parts in: dropping them must change it.
        import dataclasses

        stripped = dataclasses.replace(result, apps=result.apps[:1])
        assert stripped.fingerprint() != result.fingerprint()


def test_staggered_arrival_starts_late():
    tree = generate_tree(SMALL, seed=11)
    apps = [Application(60, name="early"),
            Application(60, name="late", arrival=500)]
    result = simulate(tree, apps, CONFIG, allocator="maxmin")
    late = result.apps[1]
    assert min(late.completion_times) > 500
    assert late.duration == late.makespan - 500


def test_allocator_default_is_platform_contention():
    tree = generate_tree(SMALL, seed=11)
    engine = MultiAppEngine(tree, _two_apps(), CONFIG)
    # PlatformGraph.from_tree defaults to maxmin.
    assert engine.allocator == "maxmin"


class TestFrontDoorValidation:
    def test_mutations_rejected_for_multi_app(self):
        from repro.platform.mutation import Mutation, MutationSchedule

        tree = generate_tree(SMALL, seed=11)
        mutations = MutationSchedule(
            [Mutation(node=1, attribute="w", value=tree.w[1], at_time=50)])
        with pytest.raises(ProtocolError, match="single-application"):
            simulate(tree, _two_apps(), CONFIG, mutations=mutations)

    def test_faults_now_run_for_multi_app(self):
        # PR-8 replaced the old rejection with a shared GraphFaultDriver.
        tree = generate_tree(SMALL, seed=11)
        faults = FaultSchedule([CrashEvent(at_time=50, node=1)])
        result = simulate(tree, _two_apps(), CONFIG, faults=faults,
                          check_invariants=True)
        assert result.crashed_node_ids == (1,)
        assert sum(len(a.completion_times) for a in result.apps) \
            == result.num_tasks

    def test_allocator_rejected_for_single_app(self):
        tree = generate_tree(SMALL, seed=11)
        with pytest.raises(ProtocolError, match="allocator"):
            simulate(tree, 100, CONFIG, allocator="maxmin")

    def test_missing_config_is_an_error(self):
        tree = generate_tree(SMALL, seed=11)
        with pytest.raises(ProtocolError, match="ProtocolConfig"):
            simulate(tree, 100)

    def test_non_root_source_runs_rerooted(self):
        # Once a PR 7 rejection; bags now fan out from their source via
        # a re-rooted overlay (service-mode PR), trees included.
        tree = generate_tree(SMALL, seed=11)
        apps = [Application(10, source=2), Application(10)]
        result = simulate(tree, apps, CONFIG)
        assert sum(len(a.completion_times) for a in result.apps) == 20
        both_root = simulate(tree, [Application(10), Application(10)],
                             CONFIG)
        assert result.fingerprint() != both_root.fingerprint()

    def test_unknown_source_rejected(self):
        tree = generate_tree(SMALL, seed=11)
        with pytest.raises(Exception, match="host"):
            simulate(tree, [Application(10, source=999),
                            Application(10)], CONFIG)

    def test_tracer_count_must_match_apps(self):
        from repro.protocols import Tracer

        tree = generate_tree(SMALL, seed=11)
        with pytest.raises(ProtocolError, match="tracers"):
            simulate(tree, _two_apps(), CONFIG, tracer=[Tracer()])


class TestWarpStandDown:
    def test_multi_app_reports_the_shared_constant(self):
        tree = generate_tree(SMALL, seed=11)
        config = ProtocolConfig.interruptible(3, warp=True)
        result = simulate(tree, _two_apps(20), config)
        assert result.warp is not None
        assert not result.warp.applied
        assert result.warp.reason == REASON_MULTI_APP

    def test_engines_use_the_shared_reason_set(self):
        """Satellite contract: every engine's stand-down string comes
        from the one constant set in ``repro.sim.warp``."""
        assert ProtocolEngine._warp_stand_down in STAND_DOWN_REASONS
        assert GraphProtocolEngine._warp_stand_down in STAND_DOWN_REASONS
        assert _AppLane._warp_stand_down in STAND_DOWN_REASONS

    def test_contended_graph_reason_is_in_the_set(self):
        from repro.platform.graph import generate_platform
        from repro.protocols import simulate_graph

        graph = generate_platform("leafspine", seed=7)
        config = ProtocolConfig.interruptible(3, warp=True)
        result = simulate_graph(graph, config, 100)
        assert result.warp.reason in STAND_DOWN_REASONS
