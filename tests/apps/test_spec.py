"""Application / Workload / AppResult spec contracts."""

import pytest

from repro.apps import Application, Workload
from repro.apps.metrics import (jain_index, price_of_anarchy,
                                steady_window_rate)
from repro.errors import ProtocolError

from fractions import Fraction as F


class TestApplication:
    def test_defaults(self):
        app = Application(100)
        assert (app.tasks, app.size, app.arrival, app.priority) == \
            (100, 1, 0, 0)
        assert app.source is None

    def test_label_prefers_name(self):
        assert Application(1, name="alpha").label(3) == "alpha"
        assert Application(1).label(3) == "app3"

    @pytest.mark.parametrize("kwargs", [
        {"tasks": -1},
        {"tasks": 1, "size": 0},
        {"tasks": 1, "size": -2},
        {"tasks": 1, "arrival": -5},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ProtocolError):
            Application(**kwargs)


class TestWorkload:
    def test_of_int(self):
        workload = Workload.of(500)
        assert not workload.is_multi
        assert workload.total_tasks == 500
        apps = workload.applications
        assert len(apps) == 1 and apps[0].tasks == 500

    def test_of_application(self):
        workload = Workload.of(Application(10, name="x"))
        assert workload.is_multi
        assert workload.applications[0].name == "x"

    def test_of_sequence(self):
        workload = Workload.of([Application(10), Application(20)])
        assert workload.is_multi
        assert workload.total_tasks == 30

    def test_of_workload_is_identity(self):
        workload = Workload(tasks=7)
        assert Workload.of(workload) is workload

    def test_of_empty_sequence_is_an_error(self):
        with pytest.raises(ProtocolError):
            Workload.of([])


class TestMetrics:
    def test_jain_bounds(self):
        assert jain_index([F(1), F(1), F(1)]) == pytest.approx(1.0)
        # One active app out of n drives Jain to 1/n.
        assert jain_index([F(1), F(0), F(0), F(0)]) == pytest.approx(0.25)
        assert jain_index([]) == 1.0
        assert jain_index([F(0), F(0)]) == 1.0

    def test_price_of_anarchy(self):
        assert price_of_anarchy([F(1), F(1)], F(4)) == pytest.approx(2.0)
        assert price_of_anarchy([F(0)], F(4)) is None

    def test_steady_window_rate_middle_third(self):
        completions = tuple(range(10, 110, 10))  # 10 tasks, one per 10 steps
        assert steady_window_rate(completions) == F(1, 10)

    def test_steady_window_rate_falls_back_to_mean(self):
        assert steady_window_rate((5, 9), num_tasks=2, arrival=1,
                                  makespan=9) == F(2, 8)
        assert steady_window_rate((), num_tasks=0) == F(0)
