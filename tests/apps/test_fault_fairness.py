"""Pre-fault / post-recovery Jain fairness windows."""

import pytest

from repro.apps import fault_fairness


class TestFaultFairness:
    def test_no_faults_no_windows(self):
        assert fault_fairness([[1, 2], [1, 2]], (), (), 10) == (None, None)

    def test_equal_rates_are_fair_in_both_windows(self):
        # Both apps complete one task per 10 steps before the crash at 40
        # and after the reclaim at 60.
        times = [10, 20, 30, 70, 80, 90]
        pre, post = fault_fairness([times, times], (40,), (60,), 100)
        assert pre == pytest.approx(1.0)
        assert post == pytest.approx(1.0)

    def test_starved_app_drops_post_fairness(self):
        fast = [10, 20, 30, 70, 80, 90]
        starved = [10, 20, 30]  # nothing after recovery
        pre, post = fault_fairness([fast, starved], (40,), (60,), 100)
        assert pre == pytest.approx(1.0)
        assert post == pytest.approx(0.5)  # one of two apps active

    def test_crash_at_zero_has_no_pre_window(self):
        pre, post = fault_fairness([[5, 6], [5, 7]], (0,), (2,), 10)
        assert pre is None
        assert post is not None

    def test_run_ending_mid_recovery_has_no_post_window(self):
        pre, post = fault_fairness([[5, 6], [5, 7]], (40,), (100,), 100)
        assert pre is not None
        assert post is None

    def test_recovery_defaults_to_last_crash_without_reclaims(self):
        times = [10, 20, 80, 90]
        pre, post = fault_fairness([times, times], (40, 50), (), 100)
        assert pre == pytest.approx(1.0)
        assert post == pytest.approx(1.0)
