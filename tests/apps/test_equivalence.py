"""Multi-app N=1 bit-identity: the coordinator's correctness anchor.

One default application through :class:`MultiAppEngine` must produce the
*same fingerprint* as the single-application engine — tree engine on
trees, graph engine on graph platforms.  With one lane nothing is shared
with anyone (the shared calendar and contention manager each serve a
single client), so the event calendars coincide exactly.  The matrix
spans seeds × task scales × protocols on trees plus every generated
graph shape × protocols: 27 cells.
"""

import pytest

from repro.apps import Application, MultiAppEngine
from repro.platform import generate_platform
from repro.platform.generator import generate_tree
from repro.protocols import ProtocolConfig, simulate, simulate_graph

SEEDS = [1, 7, 42]
TASKS = [150, 300]
CONFIGS = [
    ProtocolConfig.interruptible(3),
    ProtocolConfig.non_interruptible(),
    ProtocolConfig.non_interruptible(buffer_decay=True),
]
CONFIG_IDS = ["ic3", "non-ic", "non-ic-decay"]
SHAPES = ["star", "chain", "leafspine"]


@pytest.mark.parametrize("config", CONFIGS, ids=CONFIG_IDS)
@pytest.mark.parametrize("tasks", TASKS)
@pytest.mark.parametrize("seed", SEEDS)
def test_tree_n1_bit_identical(seed, tasks, config):
    tree = generate_tree(seed=seed)
    want = simulate(tree, config, tasks).fingerprint()
    got = MultiAppEngine(tree, tasks, config).run().fingerprint()
    assert got == want


@pytest.mark.parametrize("config", CONFIGS, ids=CONFIG_IDS)
@pytest.mark.parametrize("shape", SHAPES)
def test_graph_n1_bit_identical(shape, config):
    graph = generate_platform(shape, seed=7)
    want = simulate_graph(graph, config, 150).fingerprint()
    got = MultiAppEngine(graph, 150, config).run().fingerprint()
    assert got == want


def test_single_application_object_matches_int_workload():
    """One explicit Application is the same run as the plain int."""
    from repro import simulate as front_door

    tree = generate_tree(seed=3)
    config = ProtocolConfig.interruptible(3)
    want = front_door(tree, 200, config).fingerprint()
    got = front_door(tree, Application(200), config).fingerprint()
    assert got == want


def test_n1_result_carries_app_slice():
    tree = generate_tree(seed=3)
    result = MultiAppEngine(tree, 120, ProtocolConfig.interruptible(3)).run()
    assert len(result.apps) == 1
    assert result.apps[0].app.tasks == 120
    assert result.cooperative_rate is not None
    # Degenerate runs stay out of the fairness metrics.
    assert result.jain_index is None
