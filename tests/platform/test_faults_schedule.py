"""FaultSchedule and fault-event validation."""

import pytest

from repro.errors import PlatformError
from repro.platform import (CrashEvent, FaultSchedule, LinkFailureEvent,
                            LinkRepairEvent, figure1_tree)


class TestEvents:
    @pytest.mark.parametrize("cls",
                             [CrashEvent, LinkFailureEvent, LinkRepairEvent])
    def test_negative_time_rejected(self, cls):
        with pytest.raises(PlatformError, match="at_time"):
            cls(at_time=-1, node=1)

    @pytest.mark.parametrize("cls",
                             [CrashEvent, LinkFailureEvent, LinkRepairEvent])
    def test_negative_node_rejected(self, cls):
        with pytest.raises(PlatformError, match="node"):
            cls(at_time=0, node=-1)

    def test_events_are_frozen(self):
        event = CrashEvent(at_time=5, node=2)
        with pytest.raises(AttributeError):
            event.node = 3


class TestSchedule:
    def test_events_sorted_by_time(self):
        schedule = FaultSchedule([
            CrashEvent(at_time=50, node=2),
            LinkFailureEvent(at_time=10, node=5),
        ])
        assert [e.at_time for e in schedule] == [10, 50]

    def test_len_and_bool(self):
        assert not FaultSchedule()
        assert len(FaultSchedule()) == 0
        schedule = FaultSchedule([CrashEvent(at_time=1, node=1)])
        assert schedule and len(schedule) == 1

    def test_root_crash_rejected(self):
        schedule = FaultSchedule([CrashEvent(at_time=0, node=0)])
        with pytest.raises(PlatformError, match="root"):
            schedule.validate(figure1_tree())

    def test_root_link_failure_rejected(self):
        schedule = FaultSchedule([LinkFailureEvent(at_time=0, node=0)])
        with pytest.raises(PlatformError, match="root"):
            schedule.validate(figure1_tree())

    def test_double_failure_rejected(self):
        schedule = FaultSchedule([
            LinkFailureEvent(at_time=10, node=5),
            LinkFailureEvent(at_time=20, node=5),
        ])
        with pytest.raises(PlatformError, match="already down"):
            schedule.validate(figure1_tree())

    def test_repair_without_failure_rejected(self):
        schedule = FaultSchedule([LinkRepairEvent(at_time=10, node=5)])
        with pytest.raises(PlatformError, match="never down"):
            schedule.validate(figure1_tree())

    def test_well_formed_alternation_accepted(self):
        schedule = FaultSchedule([
            LinkFailureEvent(at_time=10, node=5),
            LinkRepairEvent(at_time=20, node=5),
            LinkFailureEvent(at_time=30, node=5),
            CrashEvent(at_time=40, node=2),
        ])
        schedule.validate(figure1_tree())  # must not raise

    def test_out_of_range_node_allowed_statically(self):
        # Faults may target nodes created by later churn joins, so range
        # checks are deferred to fire time.
        FaultSchedule([CrashEvent(at_time=10, node=99)]).validate(
            figure1_tree())


class TestSameTimeOrdering:
    """Same-``at_time`` overlaps normalize to failure < repair < crash."""

    def test_kind_rank_at_equal_time(self):
        schedule = FaultSchedule([
            CrashEvent(at_time=10, node=2),
            LinkRepairEvent(at_time=10, node=5),
            LinkFailureEvent(at_time=10, node=5),
        ])
        assert [type(e) for e in schedule] == [
            LinkFailureEvent, LinkRepairEvent, CrashEvent]

    def test_node_breaks_remaining_ties(self):
        schedule = FaultSchedule([
            LinkFailureEvent(at_time=10, node=7),
            LinkFailureEvent(at_time=10, node=3),
        ])
        assert [e.node for e in schedule] == [3, 7]

    def test_order_independent_of_construction(self):
        events = [
            CrashEvent(at_time=10, node=2),
            LinkFailureEvent(at_time=10, node=5),
            LinkRepairEvent(at_time=10, node=5),
            LinkFailureEvent(at_time=5, node=3),
        ]
        reference = FaultSchedule(events).events
        assert FaultSchedule(reversed(events)).events == reference
        assert FaultSchedule(events[::2] + events[1::2]).events == reference

    def test_same_time_blip_on_up_link_validates(self):
        # fail and repair at the same instant on an up link: normalized to
        # fail-then-repair, a zero-length outage — well-formed.
        schedule = FaultSchedule([
            LinkRepairEvent(at_time=10, node=5),
            LinkFailureEvent(at_time=10, node=5),
        ])
        schedule.validate(figure1_tree())  # must not raise

    def test_same_time_overlap_on_down_link_rejected(self):
        # Link already down; a same-instant repair+failure pair normalizes
        # to failure-first, which deterministically hits "already down"
        # regardless of the order the events were listed in.
        for pair in ([LinkRepairEvent(at_time=20, node=5),
                      LinkFailureEvent(at_time=20, node=5)],
                     [LinkFailureEvent(at_time=20, node=5),
                      LinkRepairEvent(at_time=20, node=5)]):
            schedule = FaultSchedule(
                [LinkFailureEvent(at_time=10, node=5)] + pair)
            with pytest.raises(PlatformError, match="already down"):
                schedule.validate(figure1_tree())

    def test_crash_sorts_after_link_events_of_other_nodes(self):
        schedule = FaultSchedule([
            CrashEvent(at_time=10, node=1),
            LinkFailureEvent(at_time=10, node=9),
        ])
        assert isinstance(schedule.events[0], LinkFailureEvent)
        assert isinstance(schedule.events[1], CrashEvent)
