"""Tests for the PlatformTree model."""

import pytest

from repro.errors import PlatformError
from repro.platform import PlatformTree


@pytest.fixture
def small_tree():
    #      0 (w=4)
    #    1/   \3
    #  1(w=2)  2(w=6)
    #           \5
    #            3(w=8)
    return PlatformTree([4, 2, 6, 8], [(0, 1, 1), (0, 2, 3), (2, 3, 5)])


class TestConstruction:
    def test_basic_shape(self, small_tree):
        assert small_tree.num_nodes == 4
        assert small_tree.root == 0
        assert small_tree.parent == [None, 0, 0, 2]
        assert small_tree.children[0] == [1, 2]
        assert small_tree.c == [0, 1, 3, 5]

    def test_empty_tree_rejected(self):
        with pytest.raises(PlatformError):
            PlatformTree([], [])

    def test_root_out_of_range(self):
        with pytest.raises(PlatformError):
            PlatformTree([1, 1], [(0, 1, 1)], root=5)

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(PlatformError):
            PlatformTree([0], [])
        with pytest.raises(PlatformError):
            PlatformTree([1, -2], [(0, 1, 1)])

    def test_nonpositive_edge_cost_rejected(self):
        with pytest.raises(PlatformError):
            PlatformTree([1, 1], [(0, 1, 0)])

    def test_two_parents_rejected(self):
        with pytest.raises(PlatformError):
            PlatformTree([1, 1, 1], [(0, 2, 1), (1, 2, 1)])

    def test_root_with_parent_rejected(self):
        with pytest.raises(PlatformError):
            PlatformTree([1, 1], [(1, 0, 1)])

    def test_wrong_edge_count_rejected(self):
        with pytest.raises(PlatformError):
            PlatformTree([1, 1, 1], [(0, 1, 1)])

    def test_unknown_node_in_edge_rejected(self):
        with pytest.raises(PlatformError):
            PlatformTree([1, 1], [(0, 7, 1)])

    def test_disconnected_cycle_rejected(self):
        # 0 isolated; 1→2→1 impossible by single-parent rule, so use a
        # subtree not hanging off the root: 1→2, 2→... cannot form n-1 edges
        # while keeping single parents without disconnecting from root.
        with pytest.raises(PlatformError):
            PlatformTree([1, 1, 1, 1], [(1, 2, 1), (2, 3, 1), (3, 1, 1)])

    def test_single_node_factory(self):
        tree = PlatformTree.single_node(7)
        assert tree.num_nodes == 1
        assert tree.leaves == [0]

    def test_fork_factory(self):
        tree = PlatformTree.fork(2, [(1, 4), (5, 8)])
        assert tree.num_nodes == 3
        assert tree.c == [0, 1, 5]
        assert tree.w == [2, 4, 8]

    def test_chain_factory(self):
        tree = PlatformTree.linear_chain([1, 2, 3], [10, 20])
        assert tree.parent == [None, 0, 1]
        assert tree.c == [0, 10, 20]

    def test_chain_factory_wrong_costs(self):
        with pytest.raises(PlatformError):
            PlatformTree.linear_chain([1, 2, 3], [10])

    def test_non_zero_root(self):
        tree = PlatformTree([1, 2], [(1, 0, 3)], root=1)
        assert tree.parent == [1, None]
        assert list(tree.bfs_order()) == [1, 0]


class TestQueries:
    def test_depths(self, small_tree):
        assert [small_tree.depth(i) for i in range(4)] == [0, 1, 1, 2]
        assert small_tree.max_depth == 2

    def test_leaves(self, small_tree):
        assert small_tree.leaves == [1, 3]

    def test_bfs_order(self, small_tree):
        assert list(small_tree.bfs_order()) == [0, 1, 2, 3]

    def test_postorder_children_before_parents(self, small_tree):
        order = list(small_tree.postorder())
        position = {nid: i for i, nid in enumerate(order)}
        for parent, child, _c in small_tree.edges():
            assert position[child] < position[parent]

    def test_subtree_ids(self, small_tree):
        assert sorted(small_tree.subtree_ids(2)) == [2, 3]
        assert sorted(small_tree.subtree_ids(0)) == [0, 1, 2, 3]

    def test_path_to_root(self, small_tree):
        assert small_tree.path_to_root(3) == [3, 2, 0]
        assert small_tree.path_to_root(0) == [0]

    def test_edges_iteration(self, small_tree):
        assert list(small_tree.edges()) == [(0, 1, 1), (0, 2, 3), (2, 3, 5)]

    def test_len(self, small_tree):
        assert len(small_tree) == 4

    def test_node_view(self, small_tree):
        node = small_tree.node(3)
        assert node.w == 8 and node.c == 5
        assert node.parent.id == 2
        assert node.is_leaf and not node.is_root
        assert node.depth == 2
        root = small_tree.node(0)
        assert root.is_root and root.parent is None
        assert [ch.id for ch in root.children] == [1, 2]

    def test_node_view_out_of_range(self, small_tree):
        with pytest.raises(PlatformError):
            small_tree.node(99)

    def test_nodes_iterator(self, small_tree):
        assert [n.id for n in small_tree.nodes()] == [0, 1, 2, 3]


class TestMutation:
    def test_set_edge_cost(self, small_tree):
        small_tree.set_edge_cost(1, 9)
        assert small_tree.c[1] == 9

    def test_set_edge_cost_on_root_rejected(self, small_tree):
        with pytest.raises(PlatformError):
            small_tree.set_edge_cost(0, 9)

    def test_set_edge_cost_nonpositive_rejected(self, small_tree):
        with pytest.raises(PlatformError):
            small_tree.set_edge_cost(1, 0)

    def test_set_compute_weight(self, small_tree):
        small_tree.set_compute_weight(2, 11)
        assert small_tree.w[2] == 11

    def test_set_compute_weight_invalid(self, small_tree):
        with pytest.raises(PlatformError):
            small_tree.set_compute_weight(2, 0)
        with pytest.raises(PlatformError):
            small_tree.set_compute_weight(42, 1)

    def test_copy_is_independent(self, small_tree):
        clone = small_tree.copy()
        clone.set_edge_cost(1, 50)
        clone.set_compute_weight(0, 99)
        assert small_tree.c[1] == 1
        assert small_tree.w[0] == 4
        assert clone == clone.copy()

    def test_equality_and_hash(self, small_tree):
        clone = small_tree.copy()
        assert clone == small_tree
        assert hash(clone) == hash(small_tree)
        clone.set_edge_cost(1, 2)
        assert clone != small_tree

    def test_equality_other_type(self, small_tree):
        assert small_tree.__eq__("nope") is NotImplemented


class TestPruning:
    def test_pruned_removes_whole_subtree(self, small_tree):
        pruned = small_tree.pruned(2)  # removes 2 and its child 3
        assert pruned.num_nodes == 2
        assert pruned.w == [4, 2]
        assert pruned.c == [0, 1]

    def test_pruned_many_multiple_subtrees(self, small_tree):
        pruned = small_tree.pruned_many([1, 2])
        assert pruned.num_nodes == 1
        assert pruned.w == [4]

    def test_pruned_many_closed_set_is_idempotent(self, small_tree):
        # Passing every member of an already-closed subtree set (as a
        # crashed-node list does) must equal pruning just its root.
        assert small_tree.pruned_many([2, 3]) == small_tree.pruned(2)
        assert small_tree.pruned_many([3, 2]) == small_tree.pruned(2)

    def test_pruned_many_relabels_contiguously(self):
        tree = PlatformTree([4, 3, 5, 6, 4], [(0, 1, 1), (0, 2, 3),
                                              (2, 3, 5), (0, 4, 2)])
        pruned = tree.pruned_many([2])
        assert pruned.num_nodes == 3
        assert pruned.parent == [None, 0, 0]
        assert pruned.w == [4, 3, 4]
        assert pruned.c == [0, 1, 2]

    def test_pruning_root_rejected(self, small_tree):
        with pytest.raises(PlatformError, match="root"):
            small_tree.pruned_many([1, 0])

    def test_unknown_node_rejected(self, small_tree):
        with pytest.raises(PlatformError, match="no node"):
            small_tree.pruned_many([42])

    def test_original_untouched(self, small_tree):
        small_tree.pruned_many([2])
        assert small_tree.num_nodes == 4


class TestForestRejection:
    def test_two_component_edge_list_names_unreachable_nodes(self):
        # Regression: a forest (edges forming two components) used to be
        # reported with the generic edge-count message; the error must say
        # exactly which nodes cannot be reached from the root.
        with pytest.raises(PlatformError,
                           match=r"unreachable from root 0: \[3, 4, 5\]"):
            PlatformTree([1, 1, 1, 1, 1, 1],
                         [(0, 1, 1), (0, 2, 1), (3, 4, 1), (3, 5, 1)])

    def test_isolated_node_named(self):
        with pytest.raises(PlatformError, match=r"\[2\]"):
            PlatformTree([1, 1, 1], [(0, 1, 1)])

    def test_cycle_caught_as_double_parent(self):
        # Closing a cycle necessarily gives some node a second parent,
        # which is rejected before reachability is even checked.
        with pytest.raises(PlatformError, match="two parents"):
            PlatformTree([1, 1, 1], [(0, 1, 1), (0, 2, 1), (1, 2, 1)])


class TestFromEdges:
    def test_sequence_weights(self, small_tree):
        built = PlatformTree.from_edges(
            [(0, 1, 1), (0, 2, 3), (2, 3, 5)], [4, 2, 6, 8])
        assert built == small_tree

    def test_dict_weights_infer_node_count(self, small_tree):
        built = PlatformTree.from_edges(
            [(0, 1, 1), (0, 2, 3), (2, 3, 5)], {0: 4, 1: 2, 2: 6, 3: 8})
        assert built == small_tree

    def test_missing_dict_weight_rejected(self):
        with pytest.raises(PlatformError, match="weight"):
            PlatformTree.from_edges([(0, 1, 1), (0, 2, 3)], {0: 4, 1: 2})

    def test_forest_edges_rejected_with_names(self):
        with pytest.raises(PlatformError, match=r"\[2, 3\]"):
            PlatformTree.from_edges([(0, 1, 1), (2, 3, 1)], [1, 1, 1, 1])

    def test_nonzero_root(self):
        built = PlatformTree.from_edges([(1, 0, 3)], [2, 1], root=1)
        assert built.root == 1
        assert built.parent == [1, None]
