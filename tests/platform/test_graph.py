"""Tests for the PlatformGraph model: construction, routing, overlays."""

import pytest

from repro.errors import PlatformError
from repro.platform import (
    PlatformGraph,
    PlatformTree,
    from_json,
    generate_platform,
    to_dict,
    to_dot,
    to_json,
)


@pytest.fixture
def diamond():
    #       0 (w=2)
    #     1/   \2        link0: 0-1, link1: 0-2
    #    1(w=3) 2(w=4)
    #     2\   /1        link2: 1-3, link3: 2-3
    #       3 (w=5)
    return PlatformGraph([2, 3, 4, 5],
                         [(0, 1, 1), (0, 2, 2), (1, 3, 2), (2, 3, 1)])


class TestConstruction:
    def test_basic_shape(self, diamond):
        assert diamond.num_nodes == 4
        assert diamond.num_links == 4
        assert diamond.hosts == [0, 1, 2, 3]
        assert diamond.switches == []
        assert diamond.adj[0] == {1: 0, 2: 1}
        assert list(diamond.links())[3] == (3, 2, 3, 1)

    def test_empty_rejected(self):
        with pytest.raises(PlatformError):
            PlatformGraph([], [])

    def test_root_out_of_range(self):
        with pytest.raises(PlatformError):
            PlatformGraph([1, 1], [(0, 1, 1)], root=5)

    def test_switch_root_rejected(self):
        with pytest.raises(PlatformError, match="switch"):
            PlatformGraph([None, 1], [(0, 1, 1)], root=0)

    def test_zero_and_negative_weight_rejected(self):
        # Guarded at construction: a zero weight would become a
        # ZeroDivisionError (or an instantaneous transfer) in the engine.
        with pytest.raises(PlatformError):
            PlatformGraph([0], [])
        with pytest.raises(PlatformError):
            PlatformGraph([1, -2], [(0, 1, 1)])

    def test_zero_and_negative_link_cost_rejected(self):
        with pytest.raises(PlatformError):
            PlatformGraph([1, 1], [(0, 1, 0)])
        with pytest.raises(PlatformError):
            PlatformGraph([1, 1], [(0, 1, -3)])

    def test_self_loop_rejected(self):
        with pytest.raises(PlatformError, match="self-loop"):
            PlatformGraph([1, 1], [(0, 1, 1), (1, 1, 1)])

    def test_parallel_link_rejected(self):
        with pytest.raises(PlatformError, match="parallel"):
            PlatformGraph([1, 1], [(0, 1, 1), (1, 0, 2)])

    def test_unknown_node_rejected(self):
        with pytest.raises(PlatformError, match="unknown node"):
            PlatformGraph([1, 1], [(0, 7, 1)])

    def test_unreachable_nodes_named(self):
        with pytest.raises(PlatformError, match=r"\[2, 3\]"):
            PlatformGraph([1, 1, 1, 1], [(0, 1, 1), (2, 3, 1)])

    def test_unknown_contention_mode_rejected(self):
        with pytest.raises(PlatformError, match="contention"):
            PlatformGraph([1], [], contention="tcp")

    def test_switches_carry_no_weight(self):
        g = PlatformGraph([1, None, 2], [(0, 1, 1), (1, 2, 1)])
        assert g.hosts == [0, 2]
        assert g.switches == [1]

    def test_capacity_is_inverse_cost(self, diamond):
        from fractions import Fraction
        assert diamond.capacity(1) == Fraction(1, 2)
        assert diamond.link_capacities()[0] == 1


class TestMutation:
    def test_set_link_cost(self, diamond):
        diamond.set_link_cost(0, 9)
        assert diamond.link_c[0] == 9

    def test_set_link_cost_guards(self, diamond):
        with pytest.raises(PlatformError):
            diamond.set_link_cost(0, 0)
        with pytest.raises(PlatformError):
            diamond.set_link_cost(99, 1)

    def test_set_link_cost_invalidates_routes(self, diamond):
        assert diamond.route(0, 3) == (0, 2)
        diamond.set_link_cost(0, 10)
        assert diamond.route(0, 3) == (1, 3)

    def test_set_compute_weight_guards(self, diamond):
        diamond.set_compute_weight(1, 7)
        assert diamond.w[1] == 7
        with pytest.raises(PlatformError):
            diamond.set_compute_weight(1, 0)
        with pytest.raises(PlatformError):
            diamond.set_compute_weight(99, 1)
        switch = PlatformGraph([1, None, 2], [(0, 1, 1), (1, 2, 1)])
        with pytest.raises(PlatformError, match="switch"):
            switch.set_compute_weight(1, 3)

    def test_copy_is_independent(self, diamond):
        clone = diamond.copy()
        clone.set_link_cost(0, 50)
        clone.set_compute_weight(0, 99)
        assert diamond.link_c[0] == 1
        assert diamond.w[0] == 2
        assert clone == clone.copy()

    def test_equality_and_hash(self, diamond):
        clone = diamond.copy()
        assert clone == diamond
        assert hash(clone) == hash(diamond)
        clone.set_link_cost(0, 3)
        assert clone != diamond
        assert diamond.__eq__("nope") is NotImplemented


class TestRouting:
    def test_shortest_by_cost(self, diamond):
        # 0→3 via 1: cost 1+2=3; via 2: 2+1=3 — tie broken by fewer hops
        # (equal) then lowest node id: the path through node 1 wins.
        assert diamond.route(0, 3) == (0, 2)

    def test_route_endpoints_validated(self, diamond):
        with pytest.raises(PlatformError):
            diamond.route(0, 99)

    def test_route_to_self_empty(self, diamond):
        assert diamond.route(2, 2) == ()

    def test_route_cost_is_bottleneck(self, diamond):
        assert diamond.route_cost((0, 2)) == 2
        assert diamond.route_cost(()) == 0

    def test_hop_count_breaks_cost_ties(self):
        # 0-3 direct (cost 2) vs 0-1-3 (1+1=2): same cost, fewer hops wins.
        g = PlatformGraph([1, 1, 1, 1],
                          [(0, 1, 1), (1, 3, 1), (0, 3, 2), (0, 2, 1)])
        assert g.route(0, 3) == (2,)


class TestOverlay:
    def test_tree_roundtrip_is_identity(self):
        tree = PlatformTree([4, 2, 6, 8], [(0, 1, 1), (0, 2, 3), (2, 3, 5)])
        overlay = PlatformGraph.from_tree(tree).overlay()
        assert overlay.tree == tree
        assert overlay.hosts == (0, 1, 2, 3)
        assert overlay.routes == ((), (0,), (1,), (2,))

    def test_nonzero_root_tree_relabelled(self):
        tree = PlatformTree([1, 2], [(1, 0, 3)], root=1)
        overlay = PlatformGraph.from_tree(tree).overlay()
        # Overlay ids: root first, then ascending graph id.
        assert overlay.hosts == (1, 0)
        assert overlay.tree.root == 0
        assert overlay.tree.w == [2, 1]

    def test_relay_rule_on_chain(self):
        g = PlatformGraph.chain([1, 2, 3], [10, 20])
        overlay = g.overlay()
        # Every interior host is a store-and-forward agent.
        assert overlay.tree.parent == [None, 0, 1]
        assert overlay.tree.c == [0, 10, 20]

    def test_switch_interior_collapses_to_fork(self):
        # Hosts hang off a switch: the relay overlay is a one-level fork
        # under the root, with bottleneck route costs as edge weights.
        g = PlatformGraph([2, None, 3, 4],
                          [(0, 1, 1), (1, 2, 5), (1, 3, 2)])
        overlay = g.overlay()
        assert overlay.tree.parent == [None, 0, 0]
        assert overlay.tree.c == [0, 5, 2]
        assert overlay.routes == ((), (0, 1), (0, 2))

    def test_overlay_edge_cost_is_route_bottleneck(self, diamond):
        overlay = diamond.overlay()
        # Host 3's overlay parent is host 1 (last host on the 0→3 path);
        # its route is the single 1-3 link.
        assert overlay.tree.parent[3] == 1
        assert overlay.tree.c[3] == 2


class TestGenerators:
    def test_star_degenerates_to_fork(self):
        g = PlatformGraph.star(2, [(1, 4), (5, 8)])
        assert g.overlay().tree == PlatformTree.fork(2, [(1, 4), (5, 8)])
        assert g.meta["kind"] == "star"

    def test_chain_degenerates_to_linear_chain(self):
        g = PlatformGraph.chain([1, 2, 3], [10, 20])
        assert g.overlay().tree == PlatformTree.linear_chain([1, 2, 3],
                                                             [10, 20])

    def test_chain_cost_count_validated(self):
        with pytest.raises(PlatformError):
            PlatformGraph.chain([1, 2, 3], [10])

    def test_leaf_spine_layout(self):
        g = PlatformGraph.leaf_spine([1, 2, 3, 4, 5], hosts_per_leaf=2,
                                     num_spines=2)
        # 5 hosts, 3 leaves, 2 spines; hosts first, then leaves, spines.
        assert g.num_nodes == 10
        assert g.hosts == [0, 1, 2, 3, 4]
        assert g.switches == [5, 6, 7, 8, 9]
        # access links in host order, then leaf-spine fabric leaf-major
        assert g.num_links == 5 + 3 * 2
        assert g.adj[0][5] == 0          # host 0 → leaf 0
        assert g.adj[4][7] == 4          # host 4 → leaf 2
        assert g.meta["num_leaves"] == 3

    def test_leaf_spine_validation(self):
        with pytest.raises(PlatformError):
            PlatformGraph.leaf_spine([], hosts_per_leaf=2)
        with pytest.raises(PlatformError):
            PlatformGraph.leaf_spine([1], hosts_per_leaf=0)
        with pytest.raises(PlatformError):
            PlatformGraph.leaf_spine([1, 1], hosts_per_leaf=2, num_spines=0)
        with pytest.raises(PlatformError):
            PlatformGraph.leaf_spine([1, 1], hosts_per_leaf=2,
                                     access_costs=[1])

    @pytest.mark.parametrize("topology", ["star", "chain", "leafspine"])
    def test_generate_platform_seeded(self, topology):
        a = generate_platform(topology, seed=11)
        b = generate_platform(topology, seed=11)
        c = generate_platform(topology, seed=12)
        assert a == b
        assert a != c
        assert a.meta["kind"] == topology

    def test_generate_platform_unknown_topology(self):
        with pytest.raises(PlatformError):
            generate_platform("torus", seed=1)

    def test_generate_platform_seed_xor_rng(self):
        import random
        with pytest.raises(PlatformError):
            generate_platform("star", seed=1, rng=random.Random(1))


class TestSerialization:
    def test_graph_roundtrip(self, diamond):
        doc = to_dict(diamond)
        assert doc["kind"] == "graph"
        assert from_json(to_json(diamond)) == diamond

    def test_meta_and_switches_roundtrip(self):
        g = PlatformGraph.leaf_spine([1, 2, 3], hosts_per_leaf=2,
                                     contention="fairshare")
        back = from_json(to_json(g))
        assert back == g
        assert back.meta == g.meta
        assert back.contention == "fairshare"
        assert back.w[3] is None  # switch weight survives as null

    def test_legacy_tree_documents_still_load(self):
        tree = PlatformTree([4, 2], [(0, 1, 3)])
        back = from_json(to_json(tree))
        assert isinstance(back, PlatformTree)
        assert back == tree

    def test_unknown_kind_rejected(self):
        with pytest.raises(PlatformError, match="kind"):
            from_json('{"kind": "hypercube", "root": 0, "nodes": [], '
                      '"links": []}')

    def test_graph_dot_export(self, diamond):
        dot = to_dot(diamond)
        assert dot.startswith("graph platform {")
        assert "n0 -- n1" in dot
        switchy = PlatformGraph([1, None, 2], [(0, 1, 1), (1, 2, 1)])
        assert 'label="S1" shape=box' in to_dot(switchy)
