"""Tests for JSON/DOT serialization."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PlatformError
from repro.platform import (
    PlatformTree,
    TreeGeneratorParams,
    figure1_tree,
    from_dict,
    from_json,
    generate_tree,
    to_dict,
    to_dot,
    to_json,
)


class TestJsonRoundTrip:
    def test_figure1_round_trip(self):
        tree = figure1_tree()
        assert from_json(to_json(tree)) == tree

    def test_indent_is_cosmetic(self):
        tree = figure1_tree()
        assert from_json(to_json(tree, indent=2)) == tree

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_random_tree_round_trip(self, seed):
        tree = generate_tree(TreeGeneratorParams(min_nodes=3, max_nodes=30),
                             seed=seed)
        assert from_dict(to_dict(tree)) == tree

    def test_non_zero_root_round_trip(self):
        tree = PlatformTree([1, 2, 3], [(1, 0, 4), (1, 2, 5)], root=1)
        assert from_json(to_json(tree)) == tree

    def test_dict_schema(self):
        data = to_dict(PlatformTree([4, 2], [(0, 1, 7)]))
        assert data == {
            "root": 0,
            "nodes": [{"id": 0, "w": 4}, {"id": 1, "w": 2}],
            "edges": [{"parent": 0, "child": 1, "c": 7}],
        }


class TestMalformedInput:
    def test_invalid_json_text(self):
        with pytest.raises(PlatformError):
            from_json("{not json")

    def test_missing_keys(self):
        with pytest.raises(PlatformError):
            from_dict({"root": 0})

    def test_non_contiguous_ids(self):
        with pytest.raises(PlatformError):
            from_dict({"root": 0, "nodes": [{"id": 0, "w": 1}, {"id": 5, "w": 1}],
                       "edges": []})

    def test_structural_errors_still_raise(self):
        with pytest.raises(PlatformError):
            from_dict({"root": 0, "nodes": [{"id": 0, "w": 1}, {"id": 1, "w": 1}],
                       "edges": []})  # missing edge


class TestDot:
    def test_dot_contains_nodes_and_edges(self):
        dot = to_dot(figure1_tree())
        assert dot.startswith("digraph platform {")
        assert 'n0 [label="P0\\nw=4" shape=doublecircle]' in dot
        assert 'n0 -> n1 [label="1"]' in dot
        assert dot.rstrip().endswith("}")

    def test_dot_custom_name(self):
        assert to_dot(figure1_tree(), name="grid").startswith("digraph grid {")
