"""Tests for the paper's example platforms (Figures 1 and 2)."""

import pytest

from repro.platform import figure1_tree, figure2a_tree, figure2b_tree


class TestFigure1:
    def test_shape(self):
        tree = figure1_tree()
        assert tree.num_nodes == 8
        assert tree.root == 0
        # Three sites: P1/P2 off the root, P3/P4 behind P2, P5..P7 site 3.
        assert tree.children[0] == [1, 2, 5]
        assert tree.children[2] == [3, 4]
        assert tree.children[5] == [6, 7]

    def test_section_423_weights(self):
        """§4.2.3 pins down c1 = 1 and w1 = 3 for the adaptability study."""
        tree = figure1_tree()
        assert tree.c[1] == 1
        assert tree.w[1] == 3

    def test_fresh_copy_each_call(self):
        a, b = figure1_tree(), figure1_tree()
        assert a == b
        a.set_edge_cost(1, 3)
        assert figure1_tree().c[1] == 1


class TestFigure2a:
    def test_parameters(self):
        tree = figure2a_tree()
        assert tree.num_nodes == 3
        assert (tree.c[1], tree.w[1]) == (1, 2)   # child B
        assert (tree.c[2], tree.w[2]) == (5, 8)   # child C

    def test_parent_weight_override(self):
        assert figure2a_tree(parent_w=7).w[0] == 7


class TestFigure2b:
    def test_parameters(self):
        tree = figure2b_tree(k=3, x=4)
        assert (tree.c[1], tree.w[1]) == (1, 4)        # child B: c=1, w=x
        assert tree.c[2] == 3 * 4 + 1                  # child C: c = k*x + 1

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            figure2b_tree(k=0)

    def test_invalid_x(self):
        with pytest.raises(ValueError):
            figure2b_tree(k=2, x=1)
