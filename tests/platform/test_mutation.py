"""Tests for dynamic platform mutation schedules."""

import pytest

from repro.errors import PlatformError
from repro.platform import Mutation, MutationSchedule, figure1_tree


class TestMutation:
    def test_task_triggered(self):
        m = Mutation(node=1, attribute="c", value=3, after_tasks=200)
        assert m.after_tasks == 200 and m.at_time is None

    def test_time_triggered(self):
        m = Mutation(node=1, attribute="w", value=1, at_time=500)
        assert m.at_time == 500

    def test_exactly_one_trigger_required(self):
        with pytest.raises(PlatformError):
            Mutation(node=1, attribute="c", value=3)
        with pytest.raises(PlatformError):
            Mutation(node=1, attribute="c", value=3, after_tasks=1, at_time=1)

    def test_invalid_attribute(self):
        with pytest.raises(PlatformError):
            Mutation(node=1, attribute="z", value=3, after_tasks=1)

    def test_invalid_value(self):
        # Zero and negative weights must be rejected at construction —
        # they would otherwise reach the engine as 1/value link rates.
        with pytest.raises(PlatformError):
            Mutation(node=1, attribute="c", value=0, after_tasks=1)
        with pytest.raises(PlatformError):
            Mutation(node=1, attribute="w", value=-2, after_tasks=1)

    def test_negative_triggers(self):
        with pytest.raises(PlatformError):
            Mutation(node=1, attribute="c", value=3, after_tasks=-1)
        with pytest.raises(PlatformError):
            Mutation(node=1, attribute="c", value=3, at_time=-1)

    def test_apply_edge_cost(self):
        tree = figure1_tree()
        Mutation(node=1, attribute="c", value=3, after_tasks=200).apply(tree)
        assert tree.c[1] == 3

    def test_apply_compute_weight(self):
        tree = figure1_tree()
        Mutation(node=1, attribute="w", value=1, after_tasks=200).apply(tree)
        assert tree.w[1] == 1


class TestSchedule:
    def test_split_by_trigger_kind(self):
        sched = MutationSchedule([
            Mutation(node=1, attribute="c", value=3, at_time=100),
            Mutation(node=1, attribute="w", value=1, after_tasks=200),
            Mutation(node=2, attribute="w", value=2, after_tasks=50),
        ])
        assert [m.after_tasks for m in sched.task_triggered()] == [50, 200]
        assert [m.at_time for m in sched.time_triggered()] == [100]

    def test_validate_unknown_node(self):
        sched = MutationSchedule([
            Mutation(node=99, attribute="w", value=1, after_tasks=1)])
        with pytest.raises(PlatformError):
            sched.validate(figure1_tree())

    def test_validate_root_edge(self):
        sched = MutationSchedule([
            Mutation(node=0, attribute="c", value=1, after_tasks=1)])
        with pytest.raises(PlatformError):
            sched.validate(figure1_tree())

    def test_validate_ok(self):
        MutationSchedule([
            Mutation(node=1, attribute="c", value=3, after_tasks=200)
        ]).validate(figure1_tree())

    def test_phases(self):
        tree = figure1_tree()
        sched = MutationSchedule([
            Mutation(node=1, attribute="c", value=3, after_tasks=200)])
        phases = sched.phases(tree)
        assert len(phases) == 2
        trigger0, tree0 = phases[0]
        trigger1, tree1 = phases[1]
        assert trigger0 is None and tree0 == tree
        assert trigger1 == 200 and tree1.c[1] == 3
        assert tree.c[1] == 1  # original untouched

    def test_dunder_protocol(self):
        m = Mutation(node=1, attribute="c", value=3, after_tasks=1)
        sched = MutationSchedule([m])
        assert list(sched) == [m]
        assert len(sched) == 1 and bool(sched)
        assert not MutationSchedule()
