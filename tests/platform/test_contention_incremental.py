"""Churn-equality property tests for the incremental contention kernel.

The incremental solver (persistent link ledgers, dirty-region
re-settling, integer-scaled arithmetic, memoized solves) must be
*observationally identical* to the from-scratch reference: same update
lists in the same order, same exact rates (as Fractions), same
remaining volumes — at every step of any operation sequence.  These
tests drive an incremental manager and an ``incremental=False`` twin
through identical randomized start/finish/pause/kill/degrade churn and
compare everything after every single operation, which is the property
the fingerprint bit-identity contract rests on.
"""

import random
from fractions import Fraction

import pytest

from repro.platform import LinkContention

F = Fraction

#: A small diamond fabric: two disjoint 2-hop paths (0-1 and 2-3) plus a
#: shared trunk link 4.  Small enough that churn constantly merges and
#: splits sharing components, which is the hard case for dirty-region
#: closure.
DIAMOND_CAPS = {0: F(3), 1: F(2), 2: F(5), 3: F(1), 4: F(4)}
DIAMOND_ROUTES = [(0,), (0, 1), (2, 3), (2,), (0, 4), (2, 4), (4,), (1, 4, 3)]

#: Coprime denominators (the leaf-spine regime): the common-denominator
#: LCM stays small per region but the caps are non-integral, so the
#: integer-scaled path must engage and reconstruct exact Fractions.
FRACTIONAL_CAPS = {0: F(3, 7), 1: F(2, 11), 2: F(5, 13), 3: F(1, 3),
                   4: F(4, 9)}

#: Capacities whose denominators are large coprime primes: the region
#: LCM blows past the machine-int scale limit, forcing the exact
#: Fraction fallback.  The two arithmetic paths must agree bit-for-bit.
HUGE_PRIME_CAPS = {0: F(3, 2**31 - 1), 1: F(2, 2305843009213693951),
                   2: F(5, 2**61 - 1), 3: F(1, 162259276829213363391578010288127),
                   4: F(4, 618970019642690137449562111)}


def _churn(mode, caps, seed, steps=160, degrade_every=0):
    """Drive twin managers through one churn sequence, comparing at every
    step; returns the incremental manager for stats assertions."""
    inc = LinkContention(caps, mode, incremental=True)
    ref = LinkContention(caps, mode, incremental=False)
    rng = random.Random(seed)
    links = sorted(caps)
    active = []
    fid = 0
    for now in range(1, steps + 1):
        op = rng.random()
        if degrade_every and now % degrade_every == 0:
            link = rng.choice(links)
            # Degrade to a fraction of nominal (new denominators arrive
            # mid-run, invalidating the memo/scale epoch), occasionally
            # restore.
            cap = caps[link] if rng.random() < 0.3 else (
                caps[link] * F(rng.randrange(1, 6), 7))
            u_inc = inc.set_capacity(link, cap, now)
            u_ref = ref.set_capacity(link, cap, now)
            _assert_updates_equal(u_inc, u_ref)
        elif active and op < 0.30:
            name = active.pop(rng.randrange(len(active)))
            _assert_updates_equal(inc.finish(name, now), ref.finish(name, now))
        elif active and op < 0.40:
            name = active.pop(rng.randrange(len(active)))
            rem_inc, u_inc = inc.pause(name, now)
            rem_ref, u_ref = ref.pause(name, now)
            assert rem_inc == rem_ref and type(rem_inc) is type(rem_ref)
            _assert_updates_equal(u_inc, u_ref)
        elif active and op < 0.45:
            kill = (rng.choice(links),)
            k_inc, u_inc = inc.kill_crossing(kill, now)
            k_ref, u_ref = ref.kill_crossing(kill, now)
            assert k_inc == k_ref
            for name in k_inc:
                active.remove(name)
            _assert_updates_equal(u_inc, u_ref)
        else:
            fid += 1
            name = f"f{fid}"
            route = rng.choice(DIAMOND_ROUTES)
            volume = rng.randrange(1, 50)
            priority = rng.randrange(3) if mode == "selfish" else None
            _assert_updates_equal(
                inc.start(name, route, volume, now, priority=priority),
                ref.start(name, route, volume, now, priority=priority))
            active.append(name)
        # Full-state probe after every op, not just the updates: a flow
        # whose rate silently drifted without an update entry would still
        # be caught here.
        assert len(inc) == len(ref)
        for name in active:
            assert inc.rate_of(name) == ref.rate_of(name)
            assert type(inc.rate_of(name)) is type(ref.rate_of(name))
            assert inc.remaining_volume(name, now) == \
                ref.remaining_volume(name, now)
    return inc


def _assert_updates_equal(got, expected):
    assert len(got) == len(expected)
    for (fid_g, rate_g, rem_g), (fid_e, rate_e, rem_e) in zip(got, expected):
        assert fid_g == fid_e
        assert rate_g == rate_e and type(rate_g) is type(rate_e)
        assert rem_g == rem_e and type(rem_g) is type(rem_e)


@pytest.mark.parametrize("mode", ["maxmin", "fairshare", "selfish"])
@pytest.mark.parametrize("seed", range(8))
def test_churn_integer_caps(mode, seed):
    """Integer capacities: the pure machine-int regime."""
    _churn(mode, DIAMOND_CAPS, seed)


@pytest.mark.parametrize("mode", ["maxmin", "fairshare", "selfish"])
@pytest.mark.parametrize("seed", range(8))
def test_churn_fractional_caps(mode, seed):
    """Coprime fractional capacities: the integer-scaled path must engage
    and still match the reference exactly."""
    manager = _churn(mode, FRACTIONAL_CAPS, seed)
    if mode != "selfish":
        # The non-selfish solvers route through the shared region scale;
        # with these caps the scaled path must actually have run.
        assert manager.solves_int > 0


@pytest.mark.parametrize("mode", ["maxmin", "fairshare"])
@pytest.mark.parametrize("seed", range(4))
def test_churn_huge_prime_caps_forces_fraction_fallback(mode, seed):
    """Overflowing region LCMs: the Fraction fallback path, same answers."""
    manager = _churn(mode, HUGE_PRIME_CAPS, seed)
    assert manager.solves_fraction > 0


@pytest.mark.parametrize("mode", ["maxmin", "fairshare", "selfish"])
@pytest.mark.parametrize("seed", range(8))
def test_churn_with_degrades(mode, seed):
    """DegradeEvent-style capacity churn: epoch boundaries mid-sequence
    exercise the int -> Fraction transition and the memo/scale flush."""
    _churn(mode, DIAMOND_CAPS, seed, degrade_every=13)


def test_memo_hits_and_solver_paths_account_for_every_settle():
    """The stats ledger is internally consistent over a long churn."""
    manager = _churn("maxmin", DIAMOND_CAPS, seed=99, steps=400)
    stats = manager.stats()
    # Empty-region settles (last flow on its links departing) count as
    # reallocations but as neither settle kind, so >= rather than ==.
    assert stats["reallocations"] >= \
        stats["settles_full"] + stats["settles_incremental"]
    # Every counted settle resolves through exactly one solver path
    # (trivial / integer-scaled / Fraction / memo) in maxmin mode.
    solves = (stats["solves_trivial"] + stats["solves_int"]
              + stats["solves_fraction"] + stats["memo_hits"])
    assert solves == stats["settles_full"] + stats["settles_incremental"]
    assert stats["memo_hits"] > 0  # steady churn revisits flow sets


def test_memo_flushes_on_capacity_epoch():
    """A memoized solution must not survive a capacity change."""
    caps = {0: F(2)}
    manager = LinkContention(caps, "maxmin", incremental=True)
    manager.start("a", (0,), 10, 0)
    manager.start("b", (0,), 10, 0)
    assert manager.rate_of("a") == F(1)
    manager.set_capacity(0, F(1), 1)
    assert manager.rate_of("a") == F(1, 2)
    # Rebuild the exact same flow signature: the old epoch's memo entry
    # (rate 1) must be gone.
    manager.finish("b", 2)
    manager.start("c", (0,), 10, 2)
    assert manager.rate_of("a") == F(1, 2)
    assert manager.rate_of("c") == F(1, 2)
