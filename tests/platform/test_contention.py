"""Tests for shared-link bandwidth allocation (max-min, fair-share)."""

from fractions import Fraction

import pytest

from repro.errors import PlatformError
from repro.platform import LinkContention, fair_share_rates, max_min_rates

F = Fraction


class TestMaxMinFixtures:
    """Hand-computed progressive-filling fixtures."""

    def test_single_bottleneck(self):
        # Three flows through one cap-1 link: equal thirds.
        rates = max_min_rates({"a": (0,), "b": (0,), "c": (0,)}, {0: F(1)})
        assert rates == {"a": F(1, 3), "b": F(1, 3), "c": F(1, 3)}

    def test_nested_bottlenecks(self):
        # link0 cap 1 carries a,b; link1 cap 1/2 carries b,c.
        # Round 1: levels are 1/2 (link0) and 1/4 (link1) → link1 freezes
        # b=c=1/4.  Round 2: link0 has 3/4 left for a alone → a=3/4.
        rates = max_min_rates(
            {"a": (0,), "b": (0, 1), "c": (1,)},
            {0: F(1), 1: F(1, 2)})
        assert rates == {"a": F(3, 4), "b": F(1, 4), "c": F(1, 4)}

    def test_equal_share_tie_broken_by_link_id(self):
        # Two disjoint links at the same fair-share level: both freeze at
        # the same rate regardless of which is picked first, but the
        # deterministic order must not crash or depend on dict order.
        rates = max_min_rates(
            {"a": (1,), "b": (0,)}, {0: F(2), 1: F(2)})
        assert rates == {"a": F(2), "b": F(2)}

    def test_work_conservation_beats_naive_order(self):
        # Regression for the dict-order bug: link1 cap 4 carries both
        # flows, link0 cap 1 carries only b.  Naively freezing the
        # *first-inserted* flow at link1's level gives a=2, b=2 — but b is
        # limited to 1 by link0, so max-min must give b=1 and let a take
        # the remaining 3.
        rates = max_min_rates(
            {"a": (1,), "b": (1, 0)}, {0: F(1), 1: F(4)})
        assert rates == {"a": F(3), "b": F(1)}

    def test_insertion_order_invariance(self):
        caps = {0: F(1), 1: F(1, 2), 2: F(3)}
        flows = {"a": (0,), "b": (0, 1), "c": (1, 2), "d": (2,)}
        import itertools
        expected = max_min_rates(flows, caps)
        for perm in itertools.permutations(flows):
            shuffled = {fid: flows[fid] for fid in perm}
            assert max_min_rates(shuffled, caps) == expected

    def test_duplicate_links_in_route_count_once(self):
        rates = max_min_rates({"a": (0, 0, 0)}, {0: F(2)})
        assert rates == {"a": F(2)}

    def test_empty_flows(self):
        assert max_min_rates({}, {0: F(1)}) == {}

    def test_empty_route_rejected(self):
        with pytest.raises(PlatformError, match="empty route"):
            max_min_rates({"a": ()}, {0: F(1)})

    def test_unknown_link_rejected(self):
        with pytest.raises(PlatformError, match="unknown link"):
            max_min_rates({"a": (9,)}, {0: F(1)})


class TestFairShare:
    def test_min_over_route(self):
        # b crosses both links; its share is min(1/2, 1/4) = 1/4, and a
        # keeps only its own link0 share (no work conservation).
        rates = fair_share_rates(
            {"a": (0,), "b": (0, 1), "c": (1,)},
            {0: F(1), 1: F(1, 2)})
        assert rates == {"a": F(1, 2), "b": F(1, 4), "c": F(1, 4)}

    def test_never_exceeds_maxmin(self):
        caps = {0: F(1), 1: F(1, 2), 2: F(3)}
        flows = {"a": (0,), "b": (0, 1), "c": (1, 2), "d": (2,)}
        mm = max_min_rates(flows, caps)
        fs = fair_share_rates(flows, caps)
        for fid in flows:
            assert fs[fid] <= mm[fid]

    def test_empty_route_rejected(self):
        with pytest.raises(PlatformError, match="empty route"):
            fair_share_rates({"a": ()}, {0: F(1)})

    def test_unknown_link_rejected(self):
        with pytest.raises(PlatformError, match="unknown link"):
            fair_share_rates({"a": (5,)}, {0: F(1)})


class TestLinkContention:
    def test_unknown_mode_rejected(self):
        with pytest.raises(PlatformError, match="contention mode"):
            LinkContention({0: F(1)}, mode="tcp")

    def test_exclusive_flow_stays_integer(self):
        # Capacity 1/c with a single flow: rate is 1/c, volume 1, and
        # _exact keeps everything int-typed where integral.
        mgr = LinkContention({0: F(1, 4)})
        updates = mgr.start("t", (0,), 1, 0)
        assert updates == [("t", F(1, 4), 1)]
        assert mgr.remaining_volume("t", 2) == F(1, 2)
        assert isinstance(mgr.remaining_volume("t", 4), int)
        assert mgr.finish("t", 4) == []
        assert len(mgr) == 0

    def test_new_flow_always_reported(self):
        # A zero-capacity corner can allocate the new flow rate 0 == its
        # initial rate; start() must still report it once.
        mgr = LinkContention({0: F(1)})
        updates = mgr.start("a", (0,), 1, 0)
        assert [u[0] for u in updates] == ["a"]

    def test_only_changed_flows_reported(self):
        mgr = LinkContention({0: F(1), 1: F(1)})
        mgr.start("a", (0,), 1, 0)
        # b on a disjoint link: a's rate is untouched, so only b reports.
        updates = mgr.start("b", (1,), 1, 0)
        assert [u[0] for u in updates] == ["b"]
        assert mgr.rate_changes == 0

    def test_settlement_on_rate_change(self):
        mgr = LinkContention({0: F(1)})
        mgr.start("a", (0,), 1, 0)
        # At t=1/2, a has moved 1/2; b joining halves both rates.
        updates = dict((fid, (rate, vol))
                       for fid, rate, vol in mgr.start("b", (0,), 1, F(1, 2)))
        assert updates["a"] == (F(1, 2), F(1, 2))
        assert updates["b"] == (F(1, 2), 1)
        assert mgr.rate_changes == 1
        # b finishing restores a to full rate with its settled volume.
        updates = mgr.finish("b", F(3, 2))
        assert updates == [("a", 1, 0)]

    def test_pause_returns_remaining_and_updates(self):
        mgr = LinkContention({0: F(1)})
        mgr.start("a", (0,), 1, 0)
        mgr.start("b", (0,), 1, 0)
        remaining, updates = mgr.pause("a", F(1))
        assert remaining == F(1, 2)     # ran at rate 1/2 for 1 step
        assert updates == [("b", 1, F(1, 2))]
        assert "a" not in mgr
        assert "b" in mgr

    def test_duplicate_start_and_missing_finish_rejected(self):
        mgr = LinkContention({0: F(1)})
        mgr.start("a", (0,), 1, 0)
        with pytest.raises(PlatformError, match="already active"):
            mgr.start("a", (0,), 1, 0)
        with pytest.raises(PlatformError, match="no active flow"):
            mgr.finish("ghost", 0)

    def test_reallocation_counter(self):
        mgr = LinkContention({0: F(1)})
        mgr.start("a", (0,), 1, 0)
        mgr.start("b", (0,), 1, 0)
        mgr.finish("a", 1)
        assert mgr.reallocations == 3

    def test_fairshare_mode(self):
        mgr = LinkContention({0: F(1), 1: F(1, 4)}, mode="fairshare")
        mgr.start("a", (0,), 1, 0)
        updates = dict((fid, rate)
                       for fid, rate, _ in mgr.start("b", (0, 1), 1, 0))
        assert updates["a"] == F(1, 2)
        assert updates["b"] == F(1, 4)
