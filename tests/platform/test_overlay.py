"""Tests for overlay-tree construction from physical topologies."""

import pytest

from repro.errors import PlatformError
from repro.platform.overlay import (
    PhysicalTopology,
    bfs_overlay,
    compare_overlays,
    mst_overlay,
    random_overlay,
    shortest_path_overlay,
)


@pytest.fixture
def diamond():
    """0—1 (cost 1), 0—2 (cost 10), 1—3 (cost 10), 2—3 (cost 1).

    Shortest-path tree and MST disagree with BFS on how node 3 attaches.
    """
    return PhysicalTopology([4, 4, 4, 4],
                           [(0, 1, 1), (0, 2, 10), (1, 3, 10), (2, 3, 1)])


class TestPhysicalTopology:
    def test_validation(self):
        with pytest.raises(PlatformError):
            PhysicalTopology([], [])
        with pytest.raises(PlatformError):
            PhysicalTopology([0], [])
        with pytest.raises(PlatformError):
            PhysicalTopology([1, 1], [(0, 0, 1)])
        with pytest.raises(PlatformError):
            PhysicalTopology([1, 1], [(0, 5, 1)])
        with pytest.raises(PlatformError):
            PhysicalTopology([1, 1], [(0, 1, 0)])

    def test_parallel_links_keep_cheapest(self):
        topo = PhysicalTopology([1, 1], [(0, 1, 5), (1, 0, 2), (0, 1, 9)])
        assert topo.adj[0][1] == 2

    def test_disconnected_detection(self):
        topo = PhysicalTopology([1, 1, 1], [(0, 1, 1)])
        with pytest.raises(PlatformError, match="disconnected"):
            topo.check_connected_from(0)

    def test_from_networkx(self):
        networkx = pytest.importorskip("networkx")
        graph = networkx.Graph()
        graph.add_node(0, w=3)
        graph.add_node(1, w=5)
        graph.add_edge(0, 1, c=7)
        topo = PhysicalTopology.from_networkx(graph)
        assert topo.w == [3, 5]
        assert topo.adj[0][1] == 7

    def test_from_networkx_bad_labels(self):
        networkx = pytest.importorskip("networkx")
        graph = networkx.Graph()
        graph.add_node("a", w=3)
        with pytest.raises(PlatformError):
            PhysicalTopology.from_networkx(graph)


class TestOverlayBuilders:
    def test_bfs_minimizes_hops(self, diamond):
        tree = bfs_overlay(diamond)
        assert tree.max_depth == 2  # 3 attaches directly below 1 or 2

    def test_shortest_path_attaches_cheaply(self, diamond):
        tree = shortest_path_overlay(diamond)
        # Node 3's cheapest path is 0—1(1)—… no: 0—1=1, 1—3=10 (total 11)
        # versus 0—2=10, 2—3=1 (total 11); tie → deterministic outcome,
        # but every edge must come from the graph.
        for parent, child, cost in tree.edges():
            assert cost in (1, 10)
        assert tree.num_nodes == 4

    def test_mst_total_cost_minimal(self, diamond):
        tree = mst_overlay(diamond)
        assert sum(cost for *_ids, cost in tree.edges()) == 12  # 1 + 10 + 1

    def test_random_overlay_deterministic_with_seed(self, diamond):
        a = random_overlay(diamond, seed=3)
        b = random_overlay(diamond, seed=3)
        assert a == b

    def test_all_builders_produce_valid_trees(self, diamond):
        for build in (bfs_overlay, shortest_path_overlay, mst_overlay):
            tree = build(diamond)
            assert tree.num_nodes == diamond.num_hosts
            assert tree.root == 0

    def test_root_relabelled_to_zero(self):
        topo = PhysicalTopology([1, 2, 3], [(0, 1, 1), (1, 2, 1)])
        tree = bfs_overlay(topo, root=2)
        assert tree.root == 0
        assert tree.w[0] == 3  # host 2's weight now at id 0

    def test_edge_weights_taken_from_graph(self, diamond):
        tree = bfs_overlay(diamond)
        for parent, child, cost in tree.edges():
            assert cost > 0


class TestComparison:
    def test_ranked_by_rate(self, diamond):
        rows = compare_overlays(diamond, seed=1)
        assert len(rows) == 4
        rates = [row.rate for row in rows]
        assert rates == sorted(rates, reverse=True)
        assert {row.strategy for row in rows} == {
            "bfs", "shortest-path", "mst", "random"}

    def test_bandwidth_sensitive_ranking(self):
        """With a tight root uplink, attaching hosts behind the cheap link
        beats the hop-minimal overlay."""
        # Star option: root—1 cheap, root—2 very expensive;
        # alternative: 2 behind 1 via a cheap link.
        topo = PhysicalTopology([10, 10, 10],
                               [(0, 1, 1), (0, 2, 50), (1, 2, 1)])
        rows = {row.strategy: row.rate for row in compare_overlays(topo)}
        assert rows["mst"] >= rows["bfs"]
