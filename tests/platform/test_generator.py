"""Tests for the paper's random tree generator (§4.1)."""

import random
import statistics

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PlatformError
from repro.platform import (
    PAPER_DEFAULTS,
    TreeGeneratorParams,
    generate_ensemble,
    generate_tree,
)


class TestParams:
    def test_paper_defaults(self):
        assert PAPER_DEFAULTS.min_nodes == 10
        assert PAPER_DEFAULTS.max_nodes == 500
        assert PAPER_DEFAULTS.min_comm == 1
        assert PAPER_DEFAULTS.max_comm == 100
        assert PAPER_DEFAULTS.max_comp == 10_000
        assert PAPER_DEFAULTS.min_comp == 100

    def test_min_comp_floor(self):
        assert TreeGeneratorParams(max_comp=50).min_comp == 1

    def test_with_max_comp(self):
        params = PAPER_DEFAULTS.with_max_comp(500)
        assert params.max_comp == 500
        assert params.min_comp == 5
        assert params.max_nodes == PAPER_DEFAULTS.max_nodes

    def test_invalid_node_range(self):
        with pytest.raises(PlatformError):
            TreeGeneratorParams(min_nodes=10, max_nodes=5)
        with pytest.raises(PlatformError):
            TreeGeneratorParams(min_nodes=0)

    def test_invalid_comm_range(self):
        with pytest.raises(PlatformError):
            TreeGeneratorParams(min_comm=5, max_comm=2)
        with pytest.raises(PlatformError):
            TreeGeneratorParams(min_comm=0)

    def test_invalid_comp(self):
        with pytest.raises(PlatformError):
            TreeGeneratorParams(max_comp=0)


class TestGeneration:
    def test_deterministic_with_seed(self):
        assert generate_tree(seed=5) == generate_tree(seed=5)

    def test_different_seeds_differ(self):
        assert generate_tree(seed=1) != generate_tree(seed=2)

    def test_seed_and_rng_conflict(self):
        with pytest.raises(PlatformError):
            generate_tree(seed=1, rng=random.Random(1))

    def test_rng_stream_advances(self):
        rng = random.Random(0)
        first = generate_tree(rng=rng)
        second = generate_tree(rng=rng)
        assert first != second

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_weights_within_bounds(self, seed):
        params = TreeGeneratorParams(min_nodes=5, max_nodes=40)
        tree = generate_tree(params, seed=seed)
        assert params.min_nodes <= tree.num_nodes <= params.max_nodes
        for i in range(tree.num_nodes):
            assert params.min_comp <= tree.w[i] <= params.max_comp
        for _p, _c, cost in tree.edges():
            assert params.min_comm <= cost <= params.max_comm

    def test_matches_paper_average_size(self):
        """Paper: average of 245 nodes with the default parameters."""
        sizes = [generate_tree(seed=s).num_nodes for s in range(150)]
        assert 220 <= statistics.mean(sizes) <= 270

    def test_depth_spread(self):
        """Paper reports depths from 2 to 82; a modest sample should show
        clearly heterogeneous depths."""
        depths = [generate_tree(seed=s).max_depth for s in range(60)]
        assert min(depths) < 12
        assert max(depths) > 25


class TestEnsemble:
    def test_count_and_determinism(self):
        trees = list(generate_ensemble(5, base_seed=100))
        assert len(trees) == 5
        again = list(generate_ensemble(5, base_seed=100))
        assert trees == again

    def test_per_tree_seed_isolation(self):
        """Tree i of an ensemble equals the tree generated with its seed."""
        trees = list(generate_ensemble(4, base_seed=40))
        assert trees[2] == generate_tree(seed=42)

    def test_negative_count_rejected(self):
        with pytest.raises(PlatformError):
            list(generate_ensemble(-1))

    def test_empty_ensemble(self):
        assert list(generate_ensemble(0)) == []
