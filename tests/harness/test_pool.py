"""Supervised execution: retry, backoff, worker death, watchdog."""

import os
import time

import pytest

from repro.errors import ExperimentError
from repro.harness import RetryPolicy, RunCoverage, SeedFailure
from repro.harness.pool import run_supervised

FAST = RetryPolicy(max_retries=2, backoff_base=0.0, jitter=0.0)


# --------------------------------------------------------------------------
# Module-level workers (process-pool tests pickle them by reference).
# --------------------------------------------------------------------------

def _square(seed):
    return seed * seed


def _always_raises(seed):
    raise ValueError(f"seed {seed} is cursed")


def _fail_once_marked(seed, marker_dir):
    """Fail the first attempt of each seed, succeed afterwards.

    Attempt state lives in marker files so it survives process boundaries.
    """
    marker = os.path.join(marker_dir, f"tried-{seed}")
    if not os.path.exists(marker):
        open(marker, "w").close()
        raise RuntimeError(f"first attempt of seed {seed}")
    return seed * 10


def _die_once_marked(seed, marker_dir, victim):
    """``os._exit`` the victim seed's first attempt — kills the worker
    process outright, breaking the whole pool."""
    marker = os.path.join(marker_dir, f"died-{seed}")
    if seed == victim and not os.path.exists(marker):
        open(marker, "w").close()
        os._exit(1)
    return seed + 100


def _hang_once_marked(seed, marker_dir, victim):
    """The victim seed's first attempt blocks far past any sane timeout."""
    marker = os.path.join(marker_dir, f"hung-{seed}")
    if seed == victim and not os.path.exists(marker):
        open(marker, "w").close()
        time.sleep(120)
    return seed - 100


class TestRetryPolicy:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ExperimentError, match="max_retries"):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ExperimentError, match="backoff"):
            RetryPolicy(backoff_base=-0.1)
        with pytest.raises(ExperimentError, match="backoff"):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ExperimentError, match="seed_timeout"):
            RetryPolicy(seed_timeout=0)

    def test_delay_is_deterministic_per_seed_and_attempt(self):
        policy = RetryPolicy(backoff_base=0.5, jitter=0.25)
        assert policy.delay(7, 1) == policy.delay(7, 1)
        assert policy.delay(7, 1) != policy.delay(8, 1)
        assert policy.delay(7, 1) != policy.delay(7, 2)

    def test_delay_grows_and_caps(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_factor=2.0,
                             backoff_max=3.0, jitter=0.0)
        assert policy.delay(0, 1) == 1.0
        assert policy.delay(0, 2) == 2.0
        assert policy.delay(0, 3) == 3.0  # capped
        assert policy.delay(0, 10) == 3.0

    def test_jitter_bounded(self):
        policy = RetryPolicy(backoff_base=1.0, jitter=0.25)
        for seed in range(50):
            assert 0.75 <= policy.delay(seed, 1) <= 1.25

    def test_zero_base_means_no_sleep(self):
        assert FAST.delay(3, 2) == 0.0


class TestRunCoverage:
    def test_summary_mentions_failures(self):
        coverage = RunCoverage(
            total=3, completed=2, skipped=0,
            failed=(SeedFailure(seed=2, attempts=3, kind="timeout",
                                error="slow"),),
            attempts=((0, 1), (1, 2), (2, 3)))
        text = coverage.summary()
        assert "2/3 completed" in text
        assert "seed 2: timeout after 3 attempts" in text
        assert coverage.retries == 3
        assert not coverage.ok
        assert coverage.failed_seeds == (2,)

    def test_merge_sums_fields(self):
        a = RunCoverage(total=2, completed=2, skipped=0, attempts=((0, 1),))
        b = RunCoverage(total=3, completed=1, skipped=2,
                        failed=(SeedFailure(5, 3, "exception", "x"),))
        merged = RunCoverage.merge([a, None, b])
        assert (merged.total, merged.completed, merged.skipped) == (5, 3, 2)
        assert merged.failed_seeds == (5,)

    def test_merge_of_clean_runs_is_ok(self):
        a = RunCoverage(total=2, completed=2, skipped=0)
        assert RunCoverage.merge([a, a]).ok


class TestSerial:
    def test_plain_success(self):
        results, failures, attempts = run_supervised(_square, [2, 3, 4])
        assert results == {2: 4, 3: 9, 4: 16}
        assert failures == {}
        assert attempts == {2: 1, 3: 1, 4: 1}

    def test_flaky_worker_retried(self, tmp_path):
        from functools import partial

        worker = partial(_fail_once_marked, marker_dir=str(tmp_path))
        results, failures, attempts = run_supervised(
            worker, [1, 2], policy=FAST)
        assert results == {1: 10, 2: 20}
        assert failures == {}
        assert attempts == {1: 2, 2: 2}

    def test_exhausted_retries_become_structured_failure(self):
        results, failures, attempts = run_supervised(
            _always_raises, [5, 6], policy=FAST)
        assert results == {}
        assert set(failures) == {5, 6}
        assert failures[5].kind == "exception"
        assert failures[5].attempts == 3  # first try + 2 retries
        assert "cursed" in failures[5].error

    def test_failfast_reraises(self):
        policy = RetryPolicy(max_retries=0, failfast=True)
        with pytest.raises(ValueError, match="cursed"):
            run_supervised(_always_raises, [5], policy=policy)

    def test_progress_counts_settled_seeds(self):
        seen = []
        run_supervised(_square, [1, 2, 3], progress=seen.append)
        assert seen == [1, 2, 3]

    def test_workers_must_be_positive(self):
        with pytest.raises(ExperimentError, match="workers"):
            run_supervised(_square, [1], workers=0)


class TestPool:
    def test_matches_serial(self):
        serial, _, _ = run_supervised(_square, range(8), workers=1)
        pooled, _, _ = run_supervised(_square, range(8), workers=3)
        assert pooled == serial

    def test_flaky_worker_retried_across_processes(self, tmp_path):
        from functools import partial

        worker = partial(_fail_once_marked, marker_dir=str(tmp_path))
        results, failures, attempts = run_supervised(
            worker, [1, 2, 3], workers=2, policy=FAST)
        assert results == {1: 10, 2: 20, 3: 30}
        assert failures == {}
        assert all(n >= 2 for n in attempts.values())

    def test_exhausted_retries_in_pool(self):
        results, failures, _ = run_supervised(
            _always_raises, [1, 2], workers=2, policy=FAST)
        assert results == {}
        assert {f.kind for f in failures.values()} == {"exception"}

    def test_worker_death_respawns_and_recovers(self, tmp_path):
        from functools import partial

        worker = partial(_die_once_marked, marker_dir=str(tmp_path),
                         victim=1)
        results, failures, attempts = run_supervised(
            worker, [0, 1, 2, 3], workers=2, policy=FAST)
        assert results == {0: 100, 1: 101, 2: 102, 3: 103}
        assert failures == {}
        # The victim (at least) was charged a worker-death attempt.
        assert attempts[1] >= 2

    def test_worker_death_exhausts_into_structured_failure(self):
        results, failures, _ = run_supervised(
            _always_dies, [0], workers=2,
            policy=RetryPolicy(max_retries=1, backoff_base=0.0, jitter=0.0))
        assert results == {}
        assert failures[0].kind == "worker-death"
        assert failures[0].attempts == 2

    def test_timeout_watchdog_kills_and_retries(self, tmp_path):
        from functools import partial

        worker = partial(_hang_once_marked, marker_dir=str(tmp_path),
                         victim=2)
        policy = RetryPolicy(max_retries=2, backoff_base=0.0, jitter=0.0,
                             seed_timeout=1.0)
        start = time.monotonic()
        results, failures, attempts = run_supervised(
            worker, [1, 2, 3], workers=2, policy=policy)
        elapsed = time.monotonic() - start
        assert results == {1: -99, 2: -98, 3: -97}
        assert failures == {}
        assert attempts[2] >= 2  # charged a timeout attempt
        assert elapsed < 60  # the 120 s hang was killed, not waited out


def _always_dies(seed):
    os._exit(1)
