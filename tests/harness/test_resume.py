"""Resume equivalence: journalled runs pick up exactly where they stopped."""

import os
import re
import signal
import subprocess
import sys
import time
from functools import partial
from pathlib import Path

import pytest

from repro.errors import ExperimentError
from repro.harness import HarnessConfig, run_seeds
from repro.harness.runner import SeedSweepOutcome

SRC = str(Path(__file__).resolve().parent.parent.parent / "src")


def _cube(seed):
    return seed ** 3


def _cube_unless_marked(seed, poison_dir):
    if os.path.exists(os.path.join(poison_dir, f"poison-{seed}")):
        raise RuntimeError(f"seed {seed} poisoned")
    return seed ** 3


class TestHarnessConfig:
    def test_resume_requires_checkpoint_dir(self):
        with pytest.raises(ExperimentError, match="checkpoint_dir"):
            HarnessConfig(resume=True)

    def test_policy_carries_knobs(self):
        config = HarnessConfig(max_retries=5, seed_timeout=9.0, jitter=0.0)
        policy = config.policy()
        assert policy.max_retries == 5
        assert policy.seed_timeout == 9.0
        assert policy.jitter == 0.0


class TestRunSeeds:
    def test_no_harness_is_failfast(self, tmp_path):
        poison_dir = str(tmp_path)
        open(os.path.join(poison_dir, "poison-3"), "w").close()
        worker = partial(_cube_unless_marked, poison_dir=poison_dir)
        with pytest.raises(RuntimeError, match="poisoned"):
            run_seeds(worker, range(5), experiment="t")

    def test_no_harness_outcome_has_full_coverage(self):
        outcome = run_seeds(_cube, range(4), experiment="t")
        assert isinstance(outcome, SeedSweepOutcome)
        assert outcome.values == (0, 1, 8, 27)
        assert outcome.coverage.ok

    def test_failed_seed_is_structured_not_raised(self, tmp_path):
        poison_dir = str(tmp_path)
        open(os.path.join(poison_dir, "poison-2"), "w").close()
        worker = partial(_cube_unless_marked, poison_dir=poison_dir)
        harness = HarnessConfig(max_retries=1, backoff_base=0.0, jitter=0.0)
        outcome = run_seeds(worker, range(4), experiment="t",
                            harness=harness)
        assert outcome.seeds == (0, 1, 3)
        assert outcome.values == (0, 1, 27)
        assert outcome.coverage.failed_seeds == (2,)
        assert outcome.coverage.failed[0].attempts == 2

    def test_all_seeds_failing_raises(self, tmp_path):
        poison_dir = str(tmp_path)
        for seed in range(3):
            open(os.path.join(poison_dir, f"poison-{seed}"), "w").close()
        worker = partial(_cube_unless_marked, poison_dir=poison_dir)
        harness = HarnessConfig(max_retries=0, backoff_base=0.0)
        with pytest.raises(ExperimentError, match="every seed failed"):
            run_seeds(worker, range(3), experiment="t", harness=harness)

    def test_resume_skips_journaled_seeds_and_reruns_failures(self, tmp_path):
        ckpt = str(tmp_path / "ckpt")
        poison_dir = str(tmp_path / "poison")
        os.makedirs(poison_dir)
        worker = partial(_cube_unless_marked, poison_dir=poison_dir)

        # First run: seeds 2 and 4 fail permanently, the rest journal.
        for seed in (2, 4):
            open(os.path.join(poison_dir, f"poison-{seed}"), "w").close()
        first = run_seeds(
            worker, range(6), experiment="t", config_parts=("v1",),
            harness=HarnessConfig(checkpoint_dir=ckpt, max_retries=0,
                                  backoff_base=0.0))
        assert first.coverage.failed_seeds == (2, 4)

        # Heal the poison and resume: only the failed seeds recompute.
        for seed in (2, 4):
            os.unlink(os.path.join(poison_dir, f"poison-{seed}"))
        resumed = run_seeds(
            worker, range(6), experiment="t", config_parts=("v1",),
            harness=HarnessConfig(checkpoint_dir=ckpt, resume=True,
                                  max_retries=0, backoff_base=0.0))
        assert resumed.coverage.skipped == 4
        assert resumed.coverage.completed == 2
        assert resumed.values == tuple(s ** 3 for s in range(6))

    def test_resumed_equals_fresh(self, tmp_path):
        ckpt = str(tmp_path / "ckpt")
        harness = HarnessConfig(checkpoint_dir=ckpt)
        fresh = run_seeds(_cube, range(8), experiment="t",
                          config_parts=("v1",), harness=harness)
        resumed = run_seeds(
            _cube, range(8), experiment="t", config_parts=("v1",),
            harness=HarnessConfig(checkpoint_dir=ckpt, resume=True))
        assert resumed.values == fresh.values
        assert resumed.coverage.skipped == 8
        assert resumed.coverage.completed == 0

    def test_resume_with_larger_ensemble_reuses_overlap(self, tmp_path):
        ckpt = str(tmp_path / "ckpt")
        run_seeds(_cube, range(4), experiment="t", config_parts=("v1",),
                  harness=HarnessConfig(checkpoint_dir=ckpt))
        grown = run_seeds(
            _cube, range(8), experiment="t", config_parts=("v1",),
            harness=HarnessConfig(checkpoint_dir=ckpt, resume=True))
        assert grown.coverage.skipped == 4
        assert grown.coverage.completed == 4
        assert grown.values == tuple(s ** 3 for s in range(8))

    def test_changed_config_rejects_resume(self, tmp_path):
        ckpt = str(tmp_path / "ckpt")
        run_seeds(_cube, range(2), experiment="t", config_parts=("v1",),
                  harness=HarnessConfig(checkpoint_dir=ckpt))
        with pytest.raises(ExperimentError, match="different configuration"):
            run_seeds(_cube, range(2), experiment="t", config_parts=("v2",),
                      harness=HarnessConfig(checkpoint_dir=ckpt, resume=True))

    def test_progress_counts_replayed_upfront(self, tmp_path):
        ckpt = str(tmp_path / "ckpt")
        run_seeds(_cube, range(4), experiment="t", config_parts=("v1",),
                  harness=HarnessConfig(checkpoint_dir=ckpt))
        seen = []
        run_seeds(_cube, range(4), experiment="t", config_parts=("v1",),
                  harness=HarnessConfig(checkpoint_dir=ckpt, resume=True),
                  progress=lambda done, total: seen.append((done, total)))
        assert seen == [(4, 4)]

    def test_workers_equivalence_under_harness(self, tmp_path):
        harness = HarnessConfig(backoff_base=0.0)
        serial = run_seeds(_cube, range(8), experiment="t", harness=harness)
        pooled = run_seeds(_cube, range(8), experiment="t", harness=harness,
                           workers=3)
        assert serial.values == pooled.values


TIMING_LINE = re.compile(r"completed in [0-9.]+s")


def _run_cli(args, timeout=600):
    env = dict(os.environ, PYTHONPATH=SRC)
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        env=env, capture_output=True, text=True, timeout=timeout)


def _normalize(report: str) -> str:
    return TIMING_LINE.sub("completed", report)


class TestKillAndResume:
    """SIGKILL a checkpointed sweep mid-run; the resume must reproduce the
    uninterrupted run bit for bit (stdout report, minus timing lines)."""

    CLI = ["fig4", "--scale", "smoke", "--trees", "12"]

    def test_sigkill_then_resume_matches_uninterrupted(self, tmp_path):
        reference = _run_cli(self.CLI + ["--workers", "1"])
        assert reference.returncode == 0, reference.stderr

        ckpt = str(tmp_path / "ckpt")
        env = dict(os.environ, PYTHONPATH=SRC)
        victim = subprocess.Popen(
            [sys.executable, "-m", "repro", *self.CLI,
             "--workers", "4", "--checkpoint-dir", ckpt],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        # Let it journal a few seeds, then kill it ungracefully.  If the
        # run happens to finish first the resume below is a pure replay —
        # the equality assertion holds either way, so no flaky timing.
        time.sleep(2.0)
        victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=30)

        resumed = _run_cli(self.CLI + [
            "--workers", "4", "--checkpoint-dir", ckpt, "--resume"])
        assert resumed.returncode == 0, resumed.stderr
        assert _normalize(resumed.stdout) == _normalize(reference.stdout)
