"""Checkpoint journals: atomic creation, replay, corruption tolerance."""

import json
import os

import pytest

from repro.errors import ExperimentError
from repro.harness import CheckpointStore, config_digest
from repro.harness.checkpoint import SCHEMA_VERSION, atomic_write_text


class TestConfigDigest:
    def test_stable_across_calls(self):
        assert config_digest("fig4", 2000, (1, 2)) == \
            config_digest("fig4", 2000, (1, 2))

    def test_sensitive_to_every_part(self):
        base = config_digest("fig4", 2000, 300)
        assert config_digest("fig5", 2000, 300) != base
        assert config_digest("fig4", 2001, 300) != base
        assert config_digest("fig4", 2000, 301) != base

    def test_separator_prevents_concatenation_collisions(self):
        assert config_digest("ab", "c") != config_digest("a", "bc")


class TestAtomicWrite:
    def test_writes_content(self, tmp_path):
        path = str(tmp_path / "out.txt")
        atomic_write_text(path, "hello\n")
        with open(path) as fh:
            assert fh.read() == "hello\n"

    def test_overwrites_atomically_and_leaves_no_tmp(self, tmp_path):
        path = str(tmp_path / "out.txt")
        atomic_write_text(path, "one\n")
        atomic_write_text(path, "two\n")
        with open(path) as fh:
            assert fh.read() == "two\n"
        assert os.listdir(tmp_path) == ["out.txt"]


class TestJournal:
    def _store(self, tmp_path):
        return CheckpointStore(str(tmp_path / "ckpt"))

    def test_fresh_journal_starts_with_header(self, tmp_path):
        store = self._store(tmp_path)
        digest = config_digest("exp", 1)
        with store.open_journal("exp", digest, meta={"k": "v"}) as journal:
            path = journal.path
        with open(path) as fh:
            header = json.loads(fh.readline())
        assert header["kind"] == "header"
        assert header["schema"] == SCHEMA_VERSION
        assert header["config_digest"] == digest
        assert header["meta"] == {"k": "v"}

    def test_roundtrip_success_and_failure(self, tmp_path):
        store = self._store(tmp_path)
        digest = config_digest("exp", 1)
        with store.open_journal("exp", digest) as journal:
            journal.record_success(3, {"rate": 0.5}, attempts=1)
            journal.record_success(7, (1, 2, 3), attempts=2)
            journal.record_failure(9, attempts=3, kind="timeout",
                                   error="exceeded 5s")
        with store.open_journal("exp", digest, resume=True) as journal:
            assert journal.replayed == {3: {"rate": 0.5}, 7: (1, 2, 3)}
            assert journal.replayed_failures == {
                9: (3, "timeout", "exceeded 5s")}

    def test_later_success_supersedes_failure(self, tmp_path):
        store = self._store(tmp_path)
        digest = config_digest("exp", 1)
        with store.open_journal("exp", digest) as journal:
            journal.record_failure(4, attempts=3, kind="exception", error="x")
            journal.record_success(4, "recovered", attempts=1)
        with store.open_journal("exp", digest, resume=True) as journal:
            assert journal.replayed == {4: "recovered"}
            assert journal.replayed_failures == {}

    def test_torn_trailing_line_tolerated(self, tmp_path):
        store = self._store(tmp_path)
        digest = config_digest("exp", 1)
        with store.open_journal("exp", digest) as journal:
            journal.record_success(0, "a", attempts=1)
            journal.record_success(1, "b", attempts=1)
            path = journal.path
        with open(path, "a") as fh:
            fh.write('{"seed": 2, "status": "ok", "payl')  # SIGKILL mid-append
        with store.open_journal("exp", digest, resume=True) as journal:
            assert journal.replayed == {0: "a", 1: "b"}

    def test_corrupt_payload_digest_skipped(self, tmp_path):
        store = self._store(tmp_path)
        digest = config_digest("exp", 1)
        with store.open_journal("exp", digest) as journal:
            journal.record_success(0, "good", attempts=1)
            journal.record_success(1, "bitrot", attempts=1)
            path = journal.path
        with open(path) as fh:
            lines = fh.read().splitlines()
        record = json.loads(lines[2])
        record["sha"] = "0" * 64  # flipped bits on disk
        lines[2] = json.dumps(record, sort_keys=True)
        with open(path, "w") as fh:
            fh.write("\n".join(lines) + "\n")
        with store.open_journal("exp", digest, resume=True) as journal:
            assert journal.replayed == {0: "good"}

    def test_config_digest_mismatch_rejected(self, tmp_path):
        store = self._store(tmp_path)
        with store.open_journal("exp", config_digest("exp", 1)):
            pass
        with pytest.raises(ExperimentError, match="different configuration"):
            store.open_journal("exp", config_digest("exp", 2), resume=True)

    def test_empty_journal_rejected(self, tmp_path):
        store = self._store(tmp_path)
        digest = config_digest("exp", 1)
        path = store.journal_path("exp", digest)
        open(path, "w").close()
        with pytest.raises(ExperimentError, match="empty"):
            store.open_journal("exp", digest, resume=True)

    def test_schema_mismatch_rejected(self, tmp_path):
        store = self._store(tmp_path)
        digest = config_digest("exp", 1)
        path = store.journal_path("exp", digest)
        header = {"kind": "header", "schema": SCHEMA_VERSION + 1,
                  "experiment": "exp", "config_digest": digest, "meta": {}}
        with open(path, "w") as fh:
            fh.write(json.dumps(header) + "\n")
        with pytest.raises(ExperimentError, match="schema"):
            store.open_journal("exp", digest, resume=True)

    def test_fresh_open_truncates_stale_journal(self, tmp_path):
        store = self._store(tmp_path)
        digest = config_digest("exp", 1)
        with store.open_journal("exp", digest) as journal:
            journal.record_success(0, "stale", attempts=1)
        with store.open_journal("exp", digest, resume=False) as journal:
            assert journal.replayed == {}
        with store.open_journal("exp", digest, resume=True) as journal:
            assert journal.replayed == {}

    def test_journal_path_keyed_by_experiment(self, tmp_path):
        store = self._store(tmp_path)
        a = store.journal_path("fig4", config_digest("fig4", 1))
        b = store.journal_path("fig4", config_digest("fig4", 2))
        c = store.journal_path("fig5", config_digest("fig4", 1))
        assert a == b  # digest lives in the header, not the filename
        assert a != c

    def test_append_after_close_rejected(self, tmp_path):
        store = self._store(tmp_path)
        journal = store.open_journal("exp", config_digest("exp", 1))
        journal.close()
        with pytest.raises(ExperimentError, match="closed"):
            journal.record_success(0, "late", attempts=1)
