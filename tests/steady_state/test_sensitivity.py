"""Tests for bottleneck classification and rate sensitivity."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SolverError
from repro.platform import PlatformTree, TreeGeneratorParams, figure1_tree, generate_tree
from repro.steady_state import (
    CAPACITY_BOUND,
    UPLINK_BOUND,
    classify_bottlenecks,
    rate_sensitivity,
    solve_tree,
    top_improvements,
)


class TestClassification:
    def test_uplink_bound_chain(self):
        # Child capacity 1/2 but one task per 10 steps: uplink binds.
        tree = PlatformTree.linear_chain([4, 2], [10])
        kinds = {b.node: b.kind for b in classify_bottlenecks(tree)}
        assert kinds[1] == UPLINK_BOUND
        assert kinds[0] == CAPACITY_BOUND  # root has no uplink

    def test_capacity_bound_chain(self):
        tree = PlatformTree.linear_chain([4, 20], [1])
        kinds = {b.node: b.kind for b in classify_bottlenecks(tree)}
        assert kinds[1] == CAPACITY_BOUND

    def test_starved_children_identified(self):
        # Child 1 saturates the port alone (c/W = 4/4); child 2 starves.
        tree = PlatformTree.fork(10, [(4, 4), (9, 1)])
        report = classify_bottlenecks(tree)
        assert report[0].starved_children == (2,)

    def test_figure1_no_starved_at_root(self):
        # Root port: P1 saturated, P5 partial, P2 starved.
        report = classify_bottlenecks(figure1_tree())
        assert report[0].starved_children == (2,)

    def test_reuses_solution(self):
        tree = figure1_tree()
        solution = solve_tree(tree)
        classify_bottlenecks(tree, solution)
        with pytest.raises(SolverError):
            classify_bottlenecks(figure1_tree(), solution)


class TestSensitivity:
    def test_starved_childs_cpu_is_worthless(self):
        """The bandwidth-centric message, quantitatively: speeding up a
        starved child's CPU changes nothing; its *link* is what matters."""
        tree = PlatformTree.fork(10, [(4, 4), (9, 1)])
        deltas = {(e.attribute, e.node): e.rate_delta
                  for e in rate_sensitivity(tree)}
        assert deltas[("w", 2)] == 0       # starved child's CPU: worthless
        assert deltas[("c", 2)] == 0       # even its link (still too costly)
        assert deltas[("w", 0)] > 0        # the root's CPU always helps
        assert deltas[("c", 1)] > 0        # the saturated child's link binds

    def test_uplink_bound_node_gains_from_cheaper_edge_only(self):
        tree = PlatformTree.linear_chain([1000, 2], [10])
        deltas = {(e.attribute, e.node): e.rate_delta
                  for e in rate_sensitivity(tree)}
        assert deltas[("c", 1)] > 0
        assert deltas[("w", 1)] == 0  # CPU idle anyway: uplink-starved

    def test_improvement_factor_validated(self):
        with pytest.raises(SolverError):
            rate_sensitivity(figure1_tree(), improvement=Fraction(3, 2))
        with pytest.raises(SolverError):
            rate_sensitivity(figure1_tree(), improvement=0)

    def test_entry_count(self):
        tree = figure1_tree()
        entries = rate_sensitivity(tree)
        # one "w" per node + one "c" per non-root node
        assert len(entries) == tree.num_nodes + (tree.num_nodes - 1)

    @given(seed=st.integers(0, 3000))
    @settings(max_examples=20, deadline=None)
    def test_improvements_never_negative(self, seed):
        tree = generate_tree(TreeGeneratorParams(min_nodes=3, max_nodes=15,
                                                 max_comm=10, max_comp=50),
                             seed=seed)
        for entry in rate_sensitivity(tree):
            assert entry.rate_delta >= 0

    def test_top_improvements_sorted_and_bounded(self):
        tree = figure1_tree()
        top = top_improvements(tree, k=3)
        assert len(top) == 3
        deltas = [e.rate_delta for e in top]
        assert deltas == sorted(deltas, reverse=True)
        everything = rate_sensitivity(tree)
        assert deltas[0] == max(e.rate_delta for e in everything)

    def test_top_improvements_k_validated(self):
        with pytest.raises(SolverError):
            top_improvements(figure1_tree(), k=0)
