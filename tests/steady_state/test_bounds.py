"""Tests for schedule periods and buffer bounds (Figure 2 analytics)."""

from fractions import Fraction

import pytest

from repro.errors import SolverError
from repro.platform import PlatformTree, figure1_tree, figure2a_tree, figure2b_tree
from repro.steady_state import (
    allocate,
    burst_bound,
    min_buffers_nonic_fork,
    schedule_period,
    tasks_per_period,
)


class TestMinBuffers:
    def test_figure2a_needs_three(self):
        """Paper: B needs at least 3 buffered tasks (c_C=5, w_B=2)."""
        assert min_buffers_nonic_fork(c_slow=5, w_fast=2) == 3

    def test_figure2b_needs_k_plus_one(self):
        """Paper: B needs more than k buffers (c_C=k*x+1, w_B=x)."""
        for k in (1, 2, 5, 10):
            x = 4
            assert min_buffers_nonic_fork(c_slow=k * x + 1, w_fast=x) == k + 1

    def test_exact_division(self):
        assert min_buffers_nonic_fork(c_slow=6, w_fast=2) == 3

    def test_validation(self):
        with pytest.raises(SolverError):
            min_buffers_nonic_fork(0, 1)
        with pytest.raises(SolverError):
            min_buffers_nonic_fork(1, 0)


class TestSchedulePeriod:
    def test_single_node_period(self):
        alloc = allocate(PlatformTree.single_node(4))
        assert schedule_period(alloc) == 4
        assert tasks_per_period(alloc) == 1

    def test_figure1_period(self):
        alloc = allocate(figure1_tree())
        period = schedule_period(alloc)
        # every positive rate must divide into an integer per period
        for rate in alloc.compute_rates:
            if rate > 0:
                assert (rate * period).denominator == 1
        assert tasks_per_period(alloc) == alloc.rate * period

    def test_period_grows_with_awkward_weights(self):
        """Co-prime weights force large periods — the paper's limitation 1."""
        tree = PlatformTree.fork(7, [(1, 11), (1, 13)])
        alloc = allocate(tree)
        assert schedule_period(alloc) == 7 * 11 * 13


class TestBurstBound:
    def test_root_needs_one(self):
        tree = figure2a_tree()
        assert burst_bound(tree, 0) == 1

    def test_high_priority_child_bound(self):
        tree = figure2a_tree()
        # B (id 1) waits through C's c=5 burst while consuming per w=2:
        # ceil(5/2) + 1 in-service = 4 — an upper estimate of the exact 3.
        assert burst_bound(tree, 1) == 4

    def test_lowest_priority_child_has_no_burst(self):
        tree = figure2a_tree()
        assert burst_bound(tree, 2) == 1  # nobody below C steals the port

    def test_bound_scales_with_k(self):
        bounds = [burst_bound(figure2b_tree(k, x=4), 1) for k in (1, 3, 6)]
        assert bounds == sorted(bounds)
        assert bounds[-1] > bounds[0]

    def test_starved_siblings_excluded(self):
        # C saturates the link entirely (c/w = 4/4 = 1): D is starved, so B's
        # burst ignores D.
        tree = PlatformTree.fork(10, [(1, 2), (4, 4), (50, 1)])
        alloc = allocate(tree)
        assert alloc.inflow_rates[3] == 0
        with_d = burst_bound(tree, 1, alloc)
        assert with_d == burst_bound(tree, 1)  # default allocation identical
        # burst counts only C's c=4: ceil(4/2) + 1 = 3
        assert with_d == 3
