"""Tests for the top-down flow allocation."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SolverError
from repro.platform import (
    PlatformTree,
    TreeGeneratorParams,
    figure1_tree,
    generate_tree,
)
from repro.steady_state import allocate, solve_tree


def small_random_tree(seed):
    return generate_tree(TreeGeneratorParams(min_nodes=2, max_nodes=25,
                                             max_comm=20, max_comp=100),
                         seed=seed)


class TestBasics:
    def test_single_node(self):
        alloc = allocate(PlatformTree.single_node(4))
        assert alloc.compute_rates == (Fraction(1, 4),)
        assert alloc.rate == Fraction(1, 4)

    def test_figure1(self):
        alloc = allocate(figure1_tree())
        assert alloc.rate == Fraction(11, 12)
        # Hand-checked: P0 computes 1/4, P1 and P5 each 1/3, rest starve.
        assert alloc.compute_rates[0] == Fraction(1, 4)
        assert alloc.compute_rates[1] == Fraction(1, 3)
        assert alloc.compute_rates[5] == Fraction(1, 3)
        assert alloc.used_nodes == [0, 1, 5]

    def test_reuses_solution(self):
        tree = figure1_tree()
        sol = solve_tree(tree)
        alloc = allocate(tree, sol)
        assert alloc.solution is sol

    def test_rejects_mismatched_solution(self):
        sol = solve_tree(figure1_tree())
        with pytest.raises(SolverError):
            allocate(figure1_tree(), sol)  # different object

    def test_link_utilization_figure1(self):
        alloc = allocate(figure1_tree())
        # Root feeds P1 (rate 1/3, c=1) and P5 (rate 1/3, c=2): 1/3 + 2/3.
        assert alloc.link_utilization(0) == 1


class TestProperties:
    @given(seed=st.integers(0, 5000))
    @settings(max_examples=60, deadline=None)
    def test_compute_rates_sum_to_tree_rate(self, seed):
        tree = small_random_tree(seed)
        alloc = allocate(tree)
        assert sum(alloc.compute_rates) == alloc.rate
        assert alloc.rate == solve_tree(tree).rate

    @given(seed=st.integers(0, 5000))
    @settings(max_examples=60, deadline=None)
    def test_flow_conservation_at_every_node(self, seed):
        tree = small_random_tree(seed)
        alloc = allocate(tree)
        for node_id in range(tree.num_nodes):
            outflow = sum(alloc.inflow_rates[cid]
                          for cid in tree.children[node_id])
            assert alloc.inflow_rates[node_id] == (
                alloc.compute_rates[node_id] + outflow)

    @given(seed=st.integers(0, 5000))
    @settings(max_examples=60, deadline=None)
    def test_no_node_overdriven(self, seed):
        tree = small_random_tree(seed)
        alloc = allocate(tree)
        for node_id in range(tree.num_nodes):
            assert alloc.compute_rates[node_id] <= Fraction(1, tree.w[node_id])
            assert alloc.link_utilization(node_id) <= 1
            if tree.parent[node_id] is not None:
                # receive port: at most one task per c timesteps
                assert alloc.inflow_rates[node_id] <= Fraction(1, tree.c[node_id])

    @given(seed=st.integers(0, 5000))
    @settings(max_examples=40, deadline=None)
    def test_used_nodes_form_connected_subtree(self, seed):
        """A node can only compute if every ancestor link carries flow."""
        tree = small_random_tree(seed)
        alloc = allocate(tree)
        used = set(alloc.used_nodes)
        for node_id in used:
            for ancestor in tree.path_to_root(node_id)[1:]:
                assert alloc.inflow_rates[node_id] > 0
                # ancestors at least forward flow (they may not compute)
                assert (alloc.compute_rates[ancestor] > 0
                        or any(alloc.inflow_rates[cid] > 0
                               for cid in tree.children[ancestor]))
