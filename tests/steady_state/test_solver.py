"""Tests for the bottom-up tree solver."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.platform import (
    PlatformTree,
    TreeGeneratorParams,
    figure1_tree,
    generate_tree,
)
from repro.steady_state import solve_fork, solve_tree


def small_random_tree(seed):
    return generate_tree(TreeGeneratorParams(min_nodes=2, max_nodes=25,
                                             max_comm=20, max_comp=100),
                         seed=seed)


class TestBaseCases:
    def test_single_node(self):
        sol = solve_tree(PlatformTree.single_node(7))
        assert sol.w_tree == 7
        assert sol.rate == Fraction(1, 7)

    def test_fork_equals_fork_solver(self):
        tree = PlatformTree.fork(2, [(1, 4), (5, 8)])
        assert solve_tree(tree).w_tree == solve_fork(2, [(1, 4), (5, 8)]).w_tree

    def test_chain_clamps_by_link(self):
        # 0 --(c=10)--> 1: child capacity 1/2 but only one task per 10 steps.
        tree = PlatformTree.linear_chain([4, 2], [10])
        sol = solve_tree(tree)
        assert sol.subtree_weights[1] == 10  # clamped at its uplink
        assert sol.rate == Fraction(1, 4) + Fraction(1, 10)

    def test_chain_deep_composition(self):
        # 0 -1-> 1 -1-> 2, all w=3: every link share is 3-ish… compute exactly.
        tree = PlatformTree.linear_chain([3, 3, 3], [1, 1])
        # Node 2 subtree: w=3. Node 1: w0=3, child (1, 3): share 1/3 → rate
        # 1/3 + 1/3 = 2/3 → weight 3/2 (clamped by c=1? max(1, 3/2) = 3/2).
        # Root: w0=3, child (1, 3/2): share 2/3 ≤ 1 → rate 1/3 + 2/3 = 1.
        sol = solve_tree(tree)
        assert sol.subtree_weights[1] == Fraction(3, 2)
        assert sol.rate == 1

    def test_figure1_value(self):
        """Hand-checked optimum for the Figure 1 platform: 11/12."""
        assert solve_tree(figure1_tree()).rate == Fraction(11, 12)

    def test_subtree_rate_accessor(self):
        tree = figure1_tree()
        sol = solve_tree(tree)
        for node_id in range(tree.num_nodes):
            assert sol.subtree_rate(node_id) == 1 / sol.subtree_weights[node_id]

    def test_fork_accessor(self):
        sol = solve_tree(figure1_tree())
        assert sol.fork(0).c0 == 0
        assert sol.fork(1).c0 == 1


class TestAdaptabilityScenarios:
    """The §4.2.3 platform changes have predictable effects on the optimum."""

    def test_slower_c1_decreases_rate(self):
        base = solve_tree(figure1_tree()).rate
        mutated = figure1_tree()
        mutated.set_edge_cost(1, 3)
        assert solve_tree(mutated).rate < base

    def test_faster_w1_increases_rate(self):
        base = solve_tree(figure1_tree()).rate
        mutated = figure1_tree()
        mutated.set_compute_weight(1, 1)
        assert solve_tree(mutated).rate > base


class TestProperties:
    @given(seed=st.integers(0, 5000))
    @settings(max_examples=60, deadline=None)
    def test_rate_bounded_by_total_compute_power(self, seed):
        tree = small_random_tree(seed)
        sol = solve_tree(tree)
        assert sol.rate <= sum(Fraction(1, w) for w in tree.w)
        assert sol.rate >= Fraction(1, tree.w[tree.root])  # root alone

    @given(seed=st.integers(0, 5000))
    @settings(max_examples=60, deadline=None)
    def test_subtree_weights_clamped_by_uplink(self, seed):
        tree = small_random_tree(seed)
        sol = solve_tree(tree)
        for node_id in range(tree.num_nodes):
            if tree.parent[node_id] is not None:
                assert sol.subtree_weights[node_id] >= tree.c[node_id]

    @given(seed=st.integers(0, 5000))
    @settings(max_examples=40, deadline=None)
    def test_speeding_up_any_node_never_hurts(self, seed):
        tree = small_random_tree(seed)
        base = solve_tree(tree).rate
        for node_id in range(tree.num_nodes):
            if tree.w[node_id] > 1:
                faster = tree.copy()
                faster.set_compute_weight(node_id, tree.w[node_id] - 1)
                assert solve_tree(faster).rate >= base

    @given(seed=st.integers(0, 5000))
    @settings(max_examples=40, deadline=None)
    def test_cheaper_edge_never_hurts(self, seed):
        tree = small_random_tree(seed)
        base = solve_tree(tree).rate
        for node_id in range(tree.num_nodes):
            if tree.parent[node_id] is not None and tree.c[node_id] > 1:
                cheaper = tree.copy()
                cheaper.set_edge_cost(node_id, tree.c[node_id] - 1)
                assert solve_tree(cheaper).rate >= base

    @given(seed=st.integers(0, 5000))
    @settings(max_examples=40, deadline=None)
    def test_pruning_a_subtree_never_helps(self, seed):
        tree = small_random_tree(seed)
        if tree.num_nodes < 3:
            return
        base = solve_tree(tree).rate
        # Prune the last leaf (guaranteed not the root).
        victim = tree.leaves[-1]
        keep = [i for i in range(tree.num_nodes) if i != victim]
        relabel = {old: new for new, old in enumerate(keep)}
        w = [tree.w[i] for i in keep]
        edges = [(relabel[p], relabel[ch], c) for p, ch, c in tree.edges()
                 if ch != victim]
        pruned = PlatformTree(w, edges, root=relabel[tree.root])
        assert solve_tree(pruned).rate <= base
