"""Tests for Theorem 1 on single-level forks."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SolverError
from repro.steady_state import (
    PARTIAL,
    SATURATED,
    STARVED,
    solve_fork,
)


class TestValidation:
    def test_w0_positive(self):
        with pytest.raises(SolverError):
            solve_fork(0, [])

    def test_c0_nonnegative(self):
        with pytest.raises(SolverError):
            solve_fork(1, [], c0=-1)

    def test_child_weights_positive(self):
        with pytest.raises(SolverError):
            solve_fork(1, [(0, 1)])
        with pytest.raises(SolverError):
            solve_fork(1, [(1, 0)])

    def test_non_numeric_rejected(self):
        with pytest.raises(SolverError):
            solve_fork("fast", [])


class TestNoChildren:
    def test_lone_node_rate(self):
        sol = solve_fork(5, [])
        assert sol.w_tree == 5
        assert sol.rate == Fraction(1, 5)

    def test_uplink_cap(self):
        sol = solve_fork(5, [], c0=8)
        assert sol.w_tree == 8  # can't consume faster than it receives
        assert sol.bandwidth_limited

    def test_uplink_slack(self):
        sol = solve_fork(5, [], c0=2)
        assert sol.w_tree == 5
        assert not sol.bandwidth_limited


class TestPaperFormula:
    def test_all_children_saturated(self):
        # link shares: 1/4 + 1/4 = 1/2 <= 1 → everyone fully fed
        sol = solve_fork(2, [(1, 4), (1, 4)])
        assert sol.p == 2
        assert sol.epsilon == 0
        assert sol.rate == 1  # 1/2 + 1/4 + 1/4
        assert all(ch.status == SATURATED for ch in sol.children)

    def test_partial_child_gets_leftover(self):
        # child0 share = 2/4 = 1/2; child1 wants 3/3 = 1 → only eps = 1/2 left
        sol = solve_fork(10, [(2, 4), (3, 3)])
        assert sol.p == 1
        assert sol.epsilon == Fraction(1, 2)
        c0, c1 = sol.children
        assert c0.status == SATURATED and c0.rate == Fraction(1, 4)
        assert c1.status == PARTIAL and c1.rate == Fraction(1, 2) / 3
        assert sol.rate == Fraction(1, 10) + Fraction(1, 4) + Fraction(1, 6)

    def test_starved_children_get_nothing(self):
        # child0 alone saturates the link: 4/4 = 1.
        sol = solve_fork(10, [(4, 4), (5, 1), (9, 1)])
        assert sol.p == 1
        assert sol.epsilon == 0
        statuses = [ch.status for ch in sol.children]
        assert statuses == [SATURATED, STARVED, STARVED]
        # The starved children's speed (w=1, very fast) is irrelevant:
        # bandwidth-centric in action.
        assert sol.rate == Fraction(1, 10) + Fraction(1, 4)

    def test_children_sorted_by_comm_time(self):
        sol = solve_fork(1, [(9, 1), (2, 100), (5, 100)])
        assert [ch.c for ch in sol.children] == [2, 5, 9]
        assert [ch.index for ch in sol.children] == [1, 2, 0]

    def test_allocation_by_index(self):
        sol = solve_fork(1, [(9, 1), (2, 100)])
        assert sol.allocation_by_index(0).c == 9
        with pytest.raises(SolverError):
            sol.allocation_by_index(5)

    def test_equal_comm_ties_same_total(self):
        """Fractional-knapsack: the optimum is order-independent at ties."""
        a = solve_fork(10, [(2, 4), (2, 8)])
        b = solve_fork(10, [(2, 8), (2, 4)])
        assert a.rate == b.rate

    def test_uplink_clamps_fast_fork(self):
        sol = solve_fork(1, [(1, 2)], c0=4)
        assert sol.uncapped_rate == Fraction(3, 2)
        assert sol.w_tree == 4
        assert sol.rate == Fraction(1, 4)
        assert sol.bandwidth_limited

    def test_figure2a_rate(self):
        """Figure 2(a): B (c=1, w=2), C (c=5, w=8) under a compute-less root."""
        sol = solve_fork(10**9, [(1, 2), (5, 8)])
        # B: share 1/2; C wants 5/8 → eps = 1/2, C rate = 1/10.
        assert sol.epsilon == Fraction(1, 2)
        assert sol.rate == Fraction(1, 10**9) + Fraction(1, 2) + Fraction(1, 10)


class TestProperties:
    child_lists = st.lists(
        st.tuples(st.integers(1, 50), st.integers(1, 50)), min_size=0, max_size=8)

    @given(w0=st.integers(1, 50), children=child_lists)
    @settings(max_examples=200, deadline=None)
    def test_link_capacity_never_exceeded(self, w0, children):
        sol = solve_fork(w0, children)
        assert sum(ch.link_share for ch in sol.children) <= 1

    @given(w0=st.integers(1, 50), children=child_lists)
    @settings(max_examples=200, deadline=None)
    def test_rate_is_sum_of_parts(self, w0, children):
        sol = solve_fork(w0, children)
        total = Fraction(1, w0) + sum(ch.rate for ch in sol.children)
        assert sol.uncapped_rate == total

    @given(w0=st.integers(1, 50), children=child_lists)
    @settings(max_examples=200, deadline=None)
    def test_children_never_overfed(self, w0, children):
        sol = solve_fork(w0, children)
        for ch in sol.children:
            assert ch.rate <= Fraction(1, 1) / ch.w

    @given(w0=st.integers(1, 50), children=child_lists,
           extra=st.tuples(st.integers(1, 50), st.integers(1, 50)))
    @settings(max_examples=200, deadline=None)
    def test_adding_a_child_never_hurts(self, w0, children, extra):
        base = solve_fork(w0, children)
        grown = solve_fork(w0, children + [extra])
        assert grown.rate >= base.rate

    @given(w0=st.integers(1, 50), children=child_lists)
    @settings(max_examples=200, deadline=None)
    def test_speeding_up_parent_never_hurts(self, w0, children):
        slow = solve_fork(w0 + 1, children)
        fast = solve_fork(w0, children)
        assert fast.rate >= slow.rate

    @given(w0=st.integers(1, 50), children=child_lists)
    @settings(max_examples=100, deadline=None)
    def test_rate_upper_bounds(self, w0, children):
        """Rate never beats all-CPUs-busy, nor 1/w0 plus one task per cheapest c."""
        sol = solve_fork(w0, children)
        everyone_busy = Fraction(1, w0) + sum(Fraction(1, w) for _c, w in children)
        assert sol.rate <= everyone_busy
        if children:
            cheapest = min(c for c, _w in children)
            assert sol.rate <= Fraction(1, w0) + Fraction(1, cheapest)

    @given(w0=st.integers(1, 50), children=child_lists)
    @settings(max_examples=150, deadline=None)
    def test_greedy_matches_lp_optimum(self, w0, children):
        """Cross-validate Theorem 1 against the LP solved by scipy.

        maximize 1/w0 + sum r_i   s.t.  r_i <= 1/w_i,  sum r_i c_i <= 1.
        """
        scipy_optimize = pytest.importorskip("scipy.optimize")
        sol = solve_fork(w0, children)
        if not children:
            assert sol.rate == Fraction(1, w0)
            return
        c = [-1.0] * len(children)
        a_ub = [[float(ci) for ci, _wi in children]]
        bounds = [(0, 1.0 / wi) for _ci, wi in children]
        lp = scipy_optimize.linprog(c, A_ub=a_ub, b_ub=[1.0], bounds=bounds,
                                    method="highs")
        assert lp.status == 0
        lp_rate = 1.0 / w0 - lp.fun
        assert abs(float(sol.uncapped_rate) - lp_rate) < 1e-9
