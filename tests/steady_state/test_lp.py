"""Cross-validation of the bottom-up solver against the whole-tree LP."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.platform import (
    PlatformTree,
    TreeGeneratorParams,
    figure1_tree,
    figure2a_tree,
    generate_tree,
)
from repro.steady_state import allocate, solve_tree, solve_tree_lp

pytest.importorskip("scipy")


def small_random_tree(seed):
    return generate_tree(TreeGeneratorParams(min_nodes=2, max_nodes=30,
                                             max_comm=20, max_comp=100),
                         seed=seed)


class TestAgainstTheorem1:
    def test_single_node(self):
        tree = PlatformTree.single_node(4)
        lp = solve_tree_lp(tree)
        assert lp.rate == pytest.approx(0.25)

    def test_figure1(self):
        lp = solve_tree_lp(figure1_tree())
        assert lp.rate == pytest.approx(11 / 12)

    def test_figure2a(self):
        tree = figure2a_tree(parent_w=10)
        lp = solve_tree_lp(tree)
        assert lp.rate == pytest.approx(float(solve_tree(tree).rate))

    @given(seed=st.integers(0, 20_000))
    @settings(max_examples=60, deadline=None)
    def test_random_trees_match(self, seed):
        """The greedy bottom-up composition equals the LP optimum."""
        tree = small_random_tree(seed)
        lp = solve_tree_lp(tree)
        exact = float(solve_tree(tree).rate)
        assert lp.rate == pytest.approx(exact, rel=1e-8)

    @given(seed=st.integers(0, 20_000))
    @settings(max_examples=30, deadline=None)
    def test_lp_flows_feasible(self, seed):
        tree = small_random_tree(seed)
        lp = solve_tree_lp(tree)
        tol = 1e-8
        for i in range(tree.num_nodes):
            assert lp.compute_rates[i] <= 1 / tree.w[i] + tol
            outflow = sum(lp.inflow_rates[j] for j in tree.children[i])
            assert lp.inflow_rates[i] == pytest.approx(
                lp.compute_rates[i] + outflow, abs=1e-8)
            port = sum(tree.c[j] * lp.inflow_rates[j]
                       for j in tree.children[i])
            assert port <= 1 + tol

    @given(seed=st.integers(0, 20_000))
    @settings(max_examples=20, deadline=None)
    def test_allocation_is_an_lp_optimum(self, seed):
        """The exact allocator's total matches the LP's total (the flow
        split may differ — degenerate optima — but not the value)."""
        tree = small_random_tree(seed)
        lp = solve_tree_lp(tree)
        alloc = allocate(tree)
        assert float(sum(alloc.compute_rates)) == pytest.approx(
            lp.rate, rel=1e-8)


class TestDuals:
    def test_saturated_root_port_has_positive_price(self):
        # Two identical children share the saturated port; no CPU or
        # receive-port bound binds, so the port row carries the full
        # shadow price: one extra unit of port time buys 1/c = 0.5 tasks.
        tree = PlatformTree.fork(10, [(2, 2), (2, 2)])
        lp = solve_tree_lp(tree)
        assert lp.link_duals[0] == pytest.approx(0.5)

    def test_idle_port_has_zero_price(self):
        # Child barely uses the port (share c/w = 1/100): price ~ 0.
        tree = PlatformTree.fork(10, [(1, 100)])
        lp = solve_tree_lp(tree)
        assert lp.link_duals[0] == pytest.approx(0.0, abs=1e-9)

    def test_leaves_have_no_port_constraint(self):
        lp = solve_tree_lp(figure1_tree())
        for leaf in (1, 3, 4, 6, 7):
            assert lp.link_duals[leaf] is None
