"""Back-compat guarantees for the API redesign.

Two contracts:

* every name importable from ``repro`` before the redesign still imports
  (plus the newly exported fault/recovery surface), and
* the old experiment spellings (``fig7.run(num_tasks)``,
  ``overlay_strategies(graphs=...)``) keep working — they warn, not break.
"""

import warnings

import pytest

import repro
from repro.experiments import ExperimentScale, ablation, fig7

#: The exact public surface of ``repro`` before this redesign.
PRE_REDESIGN_NAMES = [
    "__version__",
    "ReproError", "SimulationError", "PlatformError", "SolverError",
    "ProtocolError", "ExperimentError",
    "PlatformTree", "TreeNode",
    "generate_tree", "TreeGeneratorParams",
    "solve_tree", "solve_fork", "SteadyStateSolution", "ForkSolution",
    "simulate", "ProtocolConfig", "SimulationResult",
]

#: Newly consolidated exports (including the PR-1 fault surface).
NEW_NAMES = [
    "Mutation", "MutationSchedule",
    "ChurnSchedule", "JoinEvent", "LeaveEvent",
    "FaultSchedule", "CrashEvent", "LinkFailureEvent", "LinkRepairEvent",
    "ProtocolEngine", "ProtocolVariant", "PriorityRule",
    "Tracer", "TraceEvent", "ascii_gantt",
    "RecoveryReport", "recovery_report", "recovery_latencies",
    "post_recovery_rate", "degraded_windows",
    "ExperimentScale",
    "simulate_graph", "selfish_rates",
    "Application", "Workload", "AppResult", "MultiAppEngine",
    "jain_index", "price_of_anarchy",
]


class TestPublicSurface:
    @pytest.mark.parametrize("name", PRE_REDESIGN_NAMES)
    def test_pre_redesign_name_still_imports(self, name):
        assert getattr(repro, name) is not None

    @pytest.mark.parametrize("name", NEW_NAMES)
    def test_new_surface_imports(self, name):
        assert getattr(repro, name) is not None

    def test_dir_lists_lazy_exports(self):
        listing = dir(repro)
        for name in PRE_REDESIGN_NAMES + NEW_NAMES:
            assert name in listing

    def test_all_matches_dir(self):
        assert set(repro.__all__) <= set(dir(repro))

    def test_lazy_access_is_cached(self):
        first = repro.FaultSchedule
        assert repro.__dict__["FaultSchedule"] is first

    def test_fault_surface_is_the_real_thing(self):
        from repro.platform.faults import FaultSchedule
        from repro.metrics.faults import recovery_report

        assert repro.FaultSchedule is FaultSchedule
        assert repro.recovery_report is recovery_report


class TestFig7Shims:
    def test_positional_int_warns_and_works(self):
        with pytest.warns(DeprecationWarning, match="ExperimentScale"):
            result = fig7.run(300)
        assert len(result.scenarios) == 3

    def test_num_tasks_keyword_warns_and_matches_new_style(self):
        with pytest.warns(DeprecationWarning, match="num_tasks"):
            old = fig7.run(num_tasks=300)
        new = fig7.run(ExperimentScale(trees=1, tasks=300))
        assert old == new

    def test_new_style_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            fig7.run(ExperimentScale(trees=1, tasks=300))


class TestSimulateFrontDoor:
    """The unified ``repro.simulate()`` and its legacy-shape shims."""

    def _tree(self):
        from repro.platform.generator import TreeGeneratorParams, generate_tree

        return generate_tree(TreeGeneratorParams(min_nodes=12, max_nodes=18),
                             seed=4)

    def test_legacy_argument_order_warns_and_matches(self):
        tree = self._tree()
        config = repro.ProtocolConfig.interruptible(3)
        new = repro.simulate(tree, 200, config).fingerprint()
        with pytest.warns(DeprecationWarning, match="simulate"):
            old = repro.simulate(tree, config, 200).fingerprint()
        assert old == new

    def test_workload_object_matches_int(self):
        tree = self._tree()
        config = repro.ProtocolConfig.interruptible(3)
        via_int = repro.simulate(tree, 200, config).fingerprint()
        via_workload = repro.simulate(
            tree, repro.Workload(tasks=200), config).fingerprint()
        assert via_int == via_workload

    def test_simulate_graph_shim_warns_and_matches(self):
        from repro.platform.graph import generate_platform

        graph = generate_platform("star", seed=3)
        config = repro.ProtocolConfig.interruptible(3)
        new = repro.simulate(graph, 150, config).fingerprint()
        with pytest.warns(DeprecationWarning, match="simulate_graph"):
            old = repro.simulate_graph(graph, config, 150).fingerprint()
        assert old == new

    def test_analyze_simulate_tree_shim_warns_and_matches(self):
        from repro.experiments.analyze import simulate_tree, simulation_report

        tree = self._tree()
        new = simulation_report(tree, "ic3", 150)
        with pytest.warns(DeprecationWarning, match="simulation_report"):
            old = simulate_tree(tree, "ic3", 150)
        assert old == new

    def test_new_style_does_not_warn(self):
        tree = self._tree()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            repro.simulate(tree, 100, repro.ProtocolConfig.interruptible(3))


class TestOverlayShims:
    def test_positional_int_warns_and_works(self):
        with pytest.warns(DeprecationWarning, match="graph count"):
            result = ablation.overlay_strategies(2, hosts=10)
        assert result.graphs == 2

    def test_graphs_keyword_warns_and_matches_new_style(self):
        with pytest.warns(DeprecationWarning, match="graphs"):
            old = ablation.overlay_strategies(graphs=2, hosts=10)
        new = ablation.overlay_strategies(
            ExperimentScale(trees=2, tasks=2), hosts=10)
        assert old == new

    def test_base_seed_keyword_warns(self):
        with pytest.warns(DeprecationWarning, match="base_seed"):
            ablation.overlay_strategies(2, hosts=10, base_seed=5)

    def test_new_style_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            ablation.overlay_strategies(
                ExperimentScale(trees=2, tasks=2), hosts=10)
