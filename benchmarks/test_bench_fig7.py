"""Benchmark regenerating Figure 7 — adaptability to platform changes.

Paper's reading: after each mid-run change (c1: 1→3 or w1: 3→1 at 200 of
1000 tasks) the protocol's completion-rate slope adjusts to closely
approximate the new optimal steady-state rate.
"""

from repro.experiments import fig7


def test_bench_fig7(benchmark, report):
    result = benchmark.pedantic(lambda: fig7.run(), rounds=3, iterations=1)
    report(fig7.format_result(result))

    base, contention, relief = result.scenarios
    assert contention.optimal_after < base.optimal_before
    assert relief.optimal_after > base.optimal_before
    for scenario in result.scenarios:
        assert scenario.tracking_error < 0.05
    # Contention slows completion; relief speeds it up (final timestamps).
    assert contention.curve[-1][0] > base.curve[-1][0]
    assert relief.curve[-1][0] < base.curve[-1][0]
