"""Benchmark regenerating Figure 4 and Table 1 (they share one ensemble).

Paper's headline numbers (25 000 trees × 10 000 tasks): IC/FB=3 reaches the
optimal steady-state rate in 99.57 % of trees, IC/FB=2 in 98.51 %, IC/FB=1
in ~82 %, non-IC/IB=1 in 20.18 %; and non-IC needs >100 buffers for all but
5.1 % of the trees it does win on.
"""

from repro.experiments import fig4, table1
from repro.experiments.common import sweep
from repro.experiments.fig4 import FIG4_CONFIGS


def test_bench_fig4_and_table1(benchmark, bench_scale, report):
    cases = benchmark.pedantic(
        lambda: sweep(FIG4_CONFIGS, bench_scale),
        rounds=1, iterations=1)

    fig4_result = fig4.summarize(cases, bench_scale)
    table1_result = table1.from_cases(cases, bench_scale)
    report(fig4.format_result(fig4_result))
    report(table1.format_result(table1_result))

    reached = fig4_result.reached
    # Shape assertions from the paper: IC dominates non-IC; more fixed
    # buffers never reach fewer trees (up to small-sample noise).
    assert reached["IC, FB=3"] > reached["non-IC, IB=1"]
    assert reached["IC, FB=2"] > reached["non-IC, IB=1"]
    assert reached["IC, FB=3"] >= 80.0
    # Table 1 shape: non-IC cannot manage with 1-3 occupied buffers.
    non_ic_row = table1_result.percentages["non-IC, IB=1"]
    assert non_ic_row[1] <= non_ic_row[100]
    assert non_ic_row[3] < reached["IC, FB=3"]
