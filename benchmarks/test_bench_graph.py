"""Benchmark — the graph engine's shared-link contention path.

A leaf-spine fabric with the head-election overlay keeps several flows
in flight over shared access links, so every flow start/finish pays a
max-min reallocation and (often) a timer reschedule.  The workload body
lives in ``workloads.py`` so ``perf.py`` (and the committed
``BENCH_kernel.json`` baseline, once regenerated) measures the same code.
"""

from workloads import run_engine_graph_faults, run_engine_graph_leafspine


def test_bench_graph_leafspine(benchmark):
    events = benchmark.pedantic(run_engine_graph_leafspine, args=(2_000,),
                                rounds=1, iterations=1)
    # A 2000-task contended run processes well over one event per task.
    assert events >= 4_000


def test_bench_graph_faults(benchmark):
    events = benchmark.pedantic(run_engine_graph_faults, args=(2_000,),
                                rounds=1, iterations=1)
    assert events >= 4_000
