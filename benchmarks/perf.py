"""Perf-trajectory harness: measure, record, and gate kernel throughput.

Two suites:

* ``kernel`` — the micro-workloads from ``workloads.py`` plus the
  protocol-engine runs and the contention-churn pair, reported as
  units/sec (events, tasks, or solver ops).
* ``sweep``  — end-to-end figure experiments at smoke scale (fig4, fig7,
  fault recovery), reported as tasks/sec and wall seconds per figure.

``--json OUT`` writes the committed ``BENCH_kernel.json`` /
``BENCH_sweep.json`` trajectory files.  ``--check BASELINE`` compares the
current machine against a committed baseline and exits non-zero on a
>``--max-regression`` throughput drop.  ``--gate-telemetry BASELINE``
additionally enforces the telemetry cost budget: the telemetry-off hot
path must not drift from the baseline, and the telemetry-on run must stay
within a bounded overhead of its telemetry-off twin (see
:func:`gate_telemetry`).

Raw events/sec is meaningless across machines (a laptop baseline would gate
a slower CI runner red forever), so every record carries a
``calibration_ops_per_sec`` from a fixed pure-``heapq`` loop; ``--check``
compares *calibration-normalized* throughput, which cancels machine speed
and isolates genuine kernel regressions.
"""

import argparse
import heapq
import json
import os
import sys
import tempfile
import time
from pathlib import Path

try:
    import repro  # noqa: F401 — probe only
except ImportError:  # running from a checkout without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from workloads import (
    run_contention_churn,
    run_contention_churn_reference,
    run_engine_arrivals_10k,
    run_engine_arrivals_10k_warp,
    run_engine_arrivals_diurnal,
    run_engine_graph_faults,
    run_engine_graph_leafspine,
    run_engine_graph_leafspine_big,
    run_engine_ic,
    run_engine_multiapp,
    run_engine_multiapp_contended,
    run_engine_ic_10k,
    run_engine_ic_10k_telemetry,
    run_engine_ic_10k_warp,
    run_engine_non_ic,
    run_preemption_churn,
    run_process_chain,
    run_producer_consumer,
    run_timer_storm,
)

SCHEMA_VERSION = 1
CALIBRATION_OPS = 200_000


def calibrate() -> float:
    """Fixed heapq push/pop loop — the machine-speed yardstick.

    Uses the same (time, priority, seq, payload) tuple shape as the
    calendar, so it tracks what the kernel actually pays per event.
    """
    best = float("inf")
    for _ in range(3):
        heap = []
        push, pop = heapq.heappush, heapq.heappop
        start = time.perf_counter()
        for seq in range(CALIBRATION_OPS):
            push(heap, (seq % 97, 1, seq, None))
            if seq % 2:
                pop(heap)
        while heap:
            pop(heap)
        best = min(best, time.perf_counter() - start)
    return CALIBRATION_OPS / best


def _measure(fn, arg, repeats):
    """Min-of-N wall time; returns (units, wall_s)."""
    units = None
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        units = fn(arg)
        best = min(best, time.perf_counter() - start)
    return units, best


# ---------------------------------------------------------------------------
# Suites
# ---------------------------------------------------------------------------

KERNEL_WORKLOADS = [
    # (name, fn, arg, unit_kind) — args mirror test_bench_kernel.py exactly.
    # The 10k pair counts *tasks* (not events): the warped run deliberately
    # skips events, so tasks/sec is the only denominator the two share —
    # their per_sec ratio is the warp speedup the CI gate checks.
    ("timer_storm", run_timer_storm, 20_000, "events"),
    ("process_chain", run_process_chain, 10_000, "events"),
    ("producer_consumer", run_producer_consumer, 2_000, "events"),
    ("preemption_churn", run_preemption_churn, 500, "events"),
    ("engine_ic_fb3", run_engine_ic, 2_000, "events"),
    ("engine_non_ic_fb2", run_engine_non_ic, 2_000, "events"),
    ("engine_graph_leafspine", run_engine_graph_leafspine, 2_000, "events"),
    ("engine_graph_faults", run_engine_graph_faults, 2_000, "events"),
    ("engine_graph_leafspine_big", run_engine_graph_leafspine_big, 2_000,
     "events"),
    ("engine_multiapp", run_engine_multiapp, 2_000, "events"),
    ("engine_multiapp_contended", run_engine_multiapp_contended, 1_800,
     "events"),
    # The churn pair drives LinkContention directly (no calendar); their
    # per_sec ratio is the incremental-kernel speedup the CI gate checks.
    ("contention_churn", run_contention_churn, 20_000, "ops"),
    ("contention_churn_reference", run_contention_churn_reference, 1_200,
     "ops"),
    ("engine_ic_10k", run_engine_ic_10k, 10_000, "tasks"),
    ("engine_ic_10k_warp", run_engine_ic_10k_warp, 10_000, "tasks"),
    ("engine_ic_10k_telemetry", run_engine_ic_10k_telemetry, 10_000, "tasks"),
    # Service-mode (open-loop) runs: the diurnal day measures the exact
    # arrival/admission/sketch hot path; the periodic pair's per_sec
    # ratio is the open-loop warp speedup the CI gate checks.
    ("engine_arrivals_diurnal", run_engine_arrivals_diurnal, 40_000,
     "events"),
    ("engine_arrivals_10k", run_engine_arrivals_10k, 10_000, "tasks"),
    ("engine_arrivals_10k_warp", run_engine_arrivals_10k_warp, 10_000,
     "tasks"),
]


def run_kernel_suite(repeats):
    records = []
    for name, fn, arg, unit_kind in KERNEL_WORKLOADS:
        units, wall = _measure(fn, arg, repeats)
        records.append({
            "name": name,
            "units": units,
            "unit_kind": unit_kind,
            "wall_s": round(wall, 6),
            "per_sec": round(units / wall, 1),
        })
        print(f"  {name:<22} {units:>8} {unit_kind:<6} {wall * 1e3:8.1f} ms  "
              f"{units / wall:>12,.0f} {unit_kind}/s")
    return records


def _sweep_fig4():
    from repro.experiments import ExperimentScale, fig4
    from repro.experiments.fig4 import FIG4_CONFIGS

    scale = ExperimentScale.smoke()
    fig4.run(scale)
    return scale.trees * scale.tasks * len(FIG4_CONFIGS)


def _sweep_fig7():
    from repro.experiments import ExperimentScale, fig7

    # The paper's Figure 7 runs 1000 tasks on the tiny figure-2a tree; that
    # finishes in ~10 ms, far too short to gate at 20%.  5x the tasks keeps
    # the scenario shape and gives the timer something to measure.
    scale = ExperimentScale(trees=1, tasks=5000)
    result = fig7.run(scale)
    return scale.tasks * len(result.scenarios)


def _sweep_faults():
    from repro.experiments import ExperimentScale, ablation

    scale = ExperimentScale.smoke()
    ablation.fault_recovery(scale)
    return scale.trees * scale.tasks


SWEEP_WORKLOADS = [
    ("fig4_smoke", _sweep_fig4),
    ("fig7_smoke", _sweep_fig7),
    ("faults_smoke", _sweep_faults),
]


def run_sweep_suite(repeats):
    records = []
    for name, fn in SWEEP_WORKLOADS:
        tasks, wall = _measure(lambda _: fn(), None, repeats)
        records.append({
            "name": name,
            "units": tasks,
            "unit_kind": "tasks",
            "wall_s": round(wall, 6),
            "per_sec": round(tasks / wall, 1),
        })
        print(f"  {name:<22} {tasks:>8} tasks   {wall:8.2f} s   "
              f"{tasks / wall:>12,.0f} tasks/s")
    return records


def _atomic_dump_json(report, path):
    """Write the trajectory file via tmp + fsync + rename.

    A run killed mid-write (the exact failure mode the sweep harness
    guards against) must never leave a truncated ``BENCH_*.json`` behind
    — a torn baseline would silently break every later ``--check``.
    """
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp",
                                    prefix=os.path.basename(path) + ".")
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


# ---------------------------------------------------------------------------
# Regression gate
# ---------------------------------------------------------------------------

def check_against(report, baseline_path, max_regression):
    """Exit 1 if any benchmark's normalized throughput dropped too far."""
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    base_cal = baseline["calibration_ops_per_sec"]
    cur_cal = report["calibration_ops_per_sec"]
    base_by_name = {b["name"]: b for b in baseline["benchmarks"]}
    speed_ratio = cur_cal / base_cal
    print(f"\ncheck vs {baseline_path}  "
          f"(machine speed ratio {speed_ratio:.2f}x, "
          f"gate: -{max_regression:.0%} normalized)")
    failed = []
    for bench in report["benchmarks"]:
        base = base_by_name.get(bench["name"])
        if base is None:
            print(f"  {bench['name']:<22} (new — no baseline, skipped)")
            continue
        # Normalize both sides by their machine's calibration throughput;
        # the resulting ratio is dimensionless "kernel cost per heap op".
        normalized = ((bench["per_sec"] / cur_cal)
                      / (base["per_sec"] / base_cal))
        verdict = "ok"
        if normalized < 1.0 - max_regression:
            verdict = "REGRESSION"
            failed.append(bench["name"])
        print(f"  {bench['name']:<22} {normalized:6.2f}x normalized  "
              f"{verdict}")
    if failed:
        print(f"\nFAIL: throughput regression >{max_regression:.0%} in: "
              f"{', '.join(failed)}")
        return 1
    print("\nall benchmarks within the regression budget")
    return 0


def gate_telemetry(report, baseline_path, max_drift, max_overhead):
    """Two-sided telemetry cost gate; exit 1 on either breach.

    * **drift** — telemetry-*off* ``engine_ic_10k`` must stay within
      ``max_drift`` (calibration-normalized) of the committed baseline:
      the probe hooks on the hot path must cost nothing when disabled.
    * **overhead** — ``engine_ic_10k_telemetry`` must run within
      ``max_overhead`` of ``engine_ic_10k`` *from the same report*: both
      were measured seconds apart on the same machine, so the raw
      per_sec ratio needs no normalization and isolates exactly the
      sampling probe's cost at the default period.
    """
    by_name = {b["name"]: b for b in report["benchmarks"]}
    off = by_name.get("engine_ic_10k")
    on = by_name.get("engine_ic_10k_telemetry")
    if off is None or on is None:
        print("\ntelemetry gate: FAIL — engine_ic_10k/_telemetry missing "
              "from this report (run the kernel suite)")
        return 1

    failed = False
    print(f"\ntelemetry gate vs {baseline_path}")

    with open(baseline_path) as fh:
        baseline = json.load(fh)
    base = {b["name"]: b for b in baseline["benchmarks"]}.get("engine_ic_10k")
    if base is None:
        print("  drift:    baseline has no engine_ic_10k record — skipped")
    else:
        normalized = ((off["per_sec"] / report["calibration_ops_per_sec"])
                      / (base["per_sec"] / baseline["calibration_ops_per_sec"]))
        drift = 1.0 - normalized
        verdict = "ok" if drift <= max_drift else "FAIL"
        failed |= drift > max_drift
        print(f"  drift:    telemetry-off engine_ic_10k {normalized:.3f}x "
              f"normalized vs baseline (gate: -{max_drift:.0%})  {verdict}")

    overhead = 1.0 - on["per_sec"] / off["per_sec"]
    verdict = "ok" if overhead <= max_overhead else "FAIL"
    failed |= overhead > max_overhead
    print(f"  overhead: telemetry-on {overhead:+.1%} vs telemetry-off "
          f"(gate: +{max_overhead:.0%})  {verdict}")

    if failed:
        print("\nFAIL: telemetry cost gate breached")
        return 1
    print("\ntelemetry cost within budget")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="perf.py", description="kernel perf-trajectory harness")
    parser.add_argument("suite", choices=["kernel", "sweep"])
    parser.add_argument("--repeats", type=int, default=None,
                        help="min-of-N timing (default: 5 kernel, 1 sweep)")
    parser.add_argument("--json", metavar="OUT",
                        help="write the trajectory record to this path")
    parser.add_argument("--check", metavar="BASELINE",
                        help="compare against a committed BENCH_*.json")
    parser.add_argument("--max-regression", type=float, default=0.20,
                        help="allowed normalized throughput drop (0.20)")
    parser.add_argument("--gate-telemetry", metavar="BASELINE",
                        help="enforce the telemetry cost gate against a "
                             "committed BENCH_kernel.json")
    parser.add_argument("--telemetry-max-drift", type=float, default=0.03,
                        help="allowed normalized drop of telemetry-off "
                             "engine_ic_10k vs baseline (0.03)")
    parser.add_argument("--telemetry-max-overhead", type=float, default=0.10,
                        help="allowed slowdown of engine_ic_10k_telemetry vs "
                             "engine_ic_10k in the same report (0.10)")
    args = parser.parse_args(argv)

    repeats = args.repeats
    if repeats is None:
        repeats = 5 if args.suite == "kernel" else 1

    print(f"calibrating ({CALIBRATION_OPS} heap ops x3)...")
    calibration = calibrate()
    print(f"calibration: {calibration:,.0f} heap ops/s\n{args.suite} suite "
          f"(min of {repeats}):")

    if args.suite == "kernel":
        records = run_kernel_suite(repeats)
    else:
        records = run_sweep_suite(repeats)

    report = {
        "suite": args.suite,
        "schema": SCHEMA_VERSION,
        "repeats": repeats,
        "python": "%d.%d.%d" % sys.version_info[:3],
        "calibration_ops_per_sec": round(calibration, 1),
        "benchmarks": records,
    }

    if args.json:
        _atomic_dump_json(report, args.json)
        print(f"\nwrote {args.json}")

    status = 0
    if args.check:
        status |= check_against(report, args.check, args.max_regression)
    if args.gate_telemetry:
        status |= gate_telemetry(report, args.gate_telemetry,
                                 args.telemetry_max_drift,
                                 args.telemetry_max_overhead)
    return status


if __name__ == "__main__":
    sys.exit(main())
