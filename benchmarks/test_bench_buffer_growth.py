"""Benchmark for the Figure 2 case studies — buffer needs under non-IC.

Paper's reading (§3.1): one buffer never suffices (Figure 2a needs 3), for
every k there is a tree needing more than k buffers (Figure 2b), while
interruptible communication sidesteps the problem entirely.
"""

from fractions import Fraction

from repro.platform import figure2a_tree, figure2b_tree
from repro.protocols import ProtocolConfig, simulate
from repro.steady_state import min_buffers_nonic_fork, solve_tree


def steady_norm(tree, config, tasks=3000):
    optimal = solve_tree(tree).rate
    result = simulate(tree, config, tasks)
    times = result.completion_times
    x = tasks // 3
    return float(Fraction(x, times[2 * x - 1] - times[x - 1]) / optimal)


def sweep_fig2(ks=(2, 4, 6)):
    rows = []
    tree_a = figure2a_tree()
    for fb in (1, 2, 3):
        rows.append(("fig2a", fb,
                     steady_norm(tree_a, ProtocolConfig.non_interruptible(
                         fb, buffer_growth=False)),
                     steady_norm(tree_a, ProtocolConfig.interruptible(fb))))
    for k in ks:
        tree_b = figure2b_tree(k, x=4)
        rows.append((f"fig2b k={k}", k,
                     steady_norm(tree_b, ProtocolConfig.non_interruptible(
                         k, buffer_growth=False)),
                     steady_norm(tree_b, ProtocolConfig.interruptible(3))))
    return rows


def test_bench_figure2_case_studies(benchmark, report):
    rows = benchmark.pedantic(sweep_fig2, rounds=1, iterations=1)

    lines = [f"{'tree':<10} {'buffers':>7} {'non-IC':>8} {'IC':>8}"]
    for tree, fb, non_ic, ic in rows:
        lines.append(f"{tree:<10} {fb:>7} {non_ic:>8.4f} {ic:>8.4f}")
    report("Figure 2 case studies — normalized steady rate\n" + "\n".join(lines))

    by_key = {(t, b): (n, i) for t, b, n, i in rows}
    # Figure 2(a): non-IC needs exactly min_buffers_nonic_fork(5, 2) == 3.
    assert min_buffers_nonic_fork(5, 2) == 3
    assert by_key[("fig2a", 1)][0] < 0.8
    assert by_key[("fig2a", 3)][0] > 0.99
    # IC reaches optimal with a single buffer on Figure 2(a).
    assert by_key[("fig2a", 1)][1] > 0.99
    # Figure 2(b): k fixed buffers fall short for every k; IC/FB=3 wins.
    for k in (4, 6):
        non_ic, ic = by_key[(f"fig2b k={k}", k)]
        assert non_ic < 0.999
        assert ic > 0.999
