"""Benchmark regenerating Figure 6 — full trees vs used sub-trees.

Paper's reading: under the default (high) computation-to-communication
ratios, substantial sub-trees actually compute — usually more than 50
nodes, typical used depth around 18 — and non-IC occasionally uses a
slightly larger or deeper sub-tree than IC/FB=3.
"""

import statistics

from repro.experiments import ExperimentScale, fig6


def test_bench_fig6(benchmark, bench_scale, report):
    result = benchmark.pedantic(lambda: fig6.run(bench_scale),
                                rounds=1, iterations=1)
    report(fig6.format_result(result))

    all_nodes = result.node_series["all"]
    used_ic = result.node_series["used, IC, FB=3"]
    used_depth_ic = result.depth_series["used, IC, FB=3"]

    # Used sub-trees are substantial (paper: usually > 50 nodes) ...
    assert statistics.median(used_ic) > 20
    # ... but strictly smaller than the full trees on average.
    assert statistics.mean(used_ic) < statistics.mean(all_nodes)
    # Typical used depth well above 1 (paper: around 18).
    assert statistics.median(used_depth_ic) >= 4
    # PDFs integrate to 1.
    _lefts, fractions = result.node_pdf("all")
    assert abs(fractions.sum() - 1.0) < 1e-9
