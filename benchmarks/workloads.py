"""Benchmark workloads shared by pytest-benchmark and the perf harness.

Each workload runs a self-contained simulation and returns the number of
work units it processed (calendar events for the kernel workloads, which
doubles as the throughput denominator in ``perf.py``).  Keeping them here —
importable both from ``test_bench_kernel.py`` and from the ``perf.py``
trajectory writer — guarantees the committed ``BENCH_*.json`` baselines
measure exactly what the pytest benchmarks measure.
"""

from dataclasses import replace

from repro.sim import Environment, Interrupt, PreemptiveResource, Store
from repro.platform.generator import TreeGeneratorParams, generate_tree
from repro.platform.graph import generate_platform
from repro.protocols import GraphProtocolEngine, ProtocolConfig, ProtocolEngine
from repro.protocols.topologies import topology_overlay
from repro.telemetry import TelemetryConfig


def run_timer_storm(events: int) -> int:
    env = Environment()

    def reschedule(remaining):
        if remaining > 0:
            env.call_in(1, reschedule, remaining - 1)

    for lane in range(10):
        env.call_in(1, reschedule, events // 10)
    env.run()
    return env.processed_count


def run_process_chain(count: int) -> int:
    env = Environment()
    done = []

    def worker(env, n):
        for _ in range(n):
            yield env.timeout(1)
        done.append(n)

    for _ in range(10):
        env.process(worker(env, count // 10))
    env.run()
    return env.processed_count


def run_producer_consumer(items: int) -> int:
    env = Environment()
    store = Store(env, capacity=8)
    consumed = []

    def producer(env):
        for i in range(items):
            yield store.put(i)
            yield env.timeout(1)

    def consumer(env):
        for _ in range(items):
            item = yield store.get()
            consumed.append(item)
            yield env.timeout(1)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    return env.processed_count


def run_preemption_churn(rounds: int) -> int:
    env = Environment()
    resource = PreemptiveResource(env)
    preempted = [0]

    def low(env):
        while True:
            with resource.request(priority=5) as req:
                yield req
                try:
                    yield env.timeout(10)
                except Interrupt:
                    preempted[0] += 1

    def high(env):
        for _ in range(rounds):
            yield env.timeout(3)
            with resource.request(priority=1) as req:
                yield req
                yield env.timeout(1)

    env.process(low(env))
    driver = env.process(high(env))
    env.run(until=driver)
    return env.processed_count


def _engine_events(config: ProtocolConfig, num_tasks: int) -> int:
    tree = generate_tree(TreeGeneratorParams(min_nodes=60, max_nodes=60),
                         seed=7)
    result = ProtocolEngine(tree, config, num_tasks).run()
    return result.events_processed


def run_engine_ic(num_tasks: int = 2000) -> int:
    """IC/FB=3 on a fixed 60-node ensemble tree — the preemption-heavy path."""
    return _engine_events(ProtocolConfig.interruptible(3), num_tasks)


def run_engine_non_ic(num_tasks: int = 2000) -> int:
    """non-IC/FB=2 on the same tree — the growth-free baseline path."""
    return _engine_events(
        ProtocolConfig.non_interruptible(2, buffer_growth=False), num_tasks)


#: Fixed tree for the long-run (steady-state warp) workloads.  Small
#: communication/computation weights keep the microstate period short, so
#: the warped variant reliably finds its recurrence within the first few
#: hundred completions; the exact variant pays full per-event cost either
#: way, making the pair a direct measure of the warp's value.
_WARP_TREE_PARAMS = TreeGeneratorParams(min_nodes=60, max_nodes=60,
                                        max_comm=8, max_comp=16,
                                        comp_divisor=16)


def _engine_tasks(config: ProtocolConfig, num_tasks: int) -> int:
    tree = generate_tree(_WARP_TREE_PARAMS, seed=1)
    ProtocolEngine(tree, config, num_tasks).run()
    return num_tasks


def run_engine_ic_10k(num_tasks: int = 10_000) -> int:
    """Long IC/FB=3 run, exact event-by-event simulation (tasks as units)."""
    return _engine_tasks(ProtocolConfig.interruptible(3), num_tasks)


def run_engine_ic_10k_warp(num_tasks: int = 10_000) -> int:
    """The same long run with steady-state warp fast-forwarding the middle."""
    return _engine_tasks(ProtocolConfig.interruptible(3, warp=True), num_tasks)


def run_engine_ic_10k_telemetry(num_tasks: int = 10_000) -> int:
    """The exact long run with default-sampling telemetry probes attached.

    Paired with ``run_engine_ic_10k``: the per_sec ratio of the two is the
    telemetry sampling overhead the CI gate holds to <=10%.
    """
    return _engine_tasks(
        replace(ProtocolConfig.interruptible(3), telemetry=TelemetryConfig()),
        num_tasks)


def run_engine_multiapp(num_tasks: int = 2000) -> int:
    """Two prioritized apps under the selfish allocator on the 60-node tree.

    Exercises the multi-application coordinator end to end: two full
    agent sets on one shared calendar, every transfer a fluid flow
    through the shared contention manager, and strict-priority
    reallocation on each flow start/finish.  Events are the denominator,
    as for the other 2k runs.
    """
    from repro.apps import Application, MultiAppEngine

    tree = generate_tree(TreeGeneratorParams(min_nodes=60, max_nodes=60),
                         seed=7)
    apps = [Application(num_tasks // 2, name=f"app{i}", priority=i)
            for i in range(2)]
    engine = MultiAppEngine(tree, apps, ProtocolConfig.interruptible(3),
                            allocator="selfish")
    return engine.run().events_processed


def run_engine_graph_leafspine(num_tasks: int = 2000) -> int:
    """IC/FB=3 on a generated leaf-spine fabric through the graph engine.

    Exercises the shared-link max-min path end to end: head-election
    overlay, per-flow route registration, and mid-flight rate
    reallocation on every flow start/finish — the cost the tree engine
    never pays.  Events are the denominator, as for the other 2k runs.
    """
    graph = generate_platform("leafspine", seed=7)
    engine = GraphProtocolEngine(
        graph, ProtocolConfig.interruptible(3), num_tasks,
        overlay=topology_overlay(graph))
    return engine.run().events_processed


def run_engine_graph_faults(num_tasks: int = 2000) -> int:
    """The leaf-spine run under a seeded chaos fault schedule.

    Same fabric and overlay as ``run_engine_graph_leafspine``, plus the
    routed fault path: flow kills on failed links, Dijkstra route
    recomputation, overlay re-election after a rack-head crash, and
    suspect/probe recovery in the agents.  Paired with the fault-free
    workload so the baseline gate catches regressions in the fault
    plumbing itself, not just in the clean path.
    """
    from repro.platform.faults import chaos_schedule

    graph = generate_platform("leafspine", seed=7)
    engine = GraphProtocolEngine(
        graph, ProtocolConfig.interruptible(3), num_tasks,
        overlay=topology_overlay(graph),
        faults=chaos_schedule(graph, seed=11, events=6))
    return engine.run().events_processed
