"""Benchmark workloads shared by pytest-benchmark and the perf harness.

Each workload runs a self-contained simulation and returns the number of
work units it processed (calendar events for the kernel workloads, which
doubles as the throughput denominator in ``perf.py``).  Keeping them here —
importable both from ``test_bench_kernel.py`` and from the ``perf.py``
trajectory writer — guarantees the committed ``BENCH_*.json`` baselines
measure exactly what the pytest benchmarks measure.
"""

import random
from dataclasses import replace

from repro.sim import Environment, Interrupt, PreemptiveResource, Store
from repro.platform.contention import LinkContention
from repro.platform.generator import TreeGeneratorParams, generate_tree
from repro.platform.graph import generate_platform
from repro.protocols import GraphProtocolEngine, ProtocolConfig, ProtocolEngine
from repro.protocols.topologies import topology_overlay
from repro.telemetry import TelemetryConfig


def run_timer_storm(events: int) -> int:
    env = Environment()

    def reschedule(remaining):
        if remaining > 0:
            env.call_in(1, reschedule, remaining - 1)

    for lane in range(10):
        env.call_in(1, reschedule, events // 10)
    env.run()
    return env.processed_count


def run_process_chain(count: int) -> int:
    env = Environment()
    done = []

    def worker(env, n):
        for _ in range(n):
            yield env.timeout(1)
        done.append(n)

    for _ in range(10):
        env.process(worker(env, count // 10))
    env.run()
    return env.processed_count


def run_producer_consumer(items: int) -> int:
    env = Environment()
    store = Store(env, capacity=8)
    consumed = []

    def producer(env):
        for i in range(items):
            yield store.put(i)
            yield env.timeout(1)

    def consumer(env):
        for _ in range(items):
            item = yield store.get()
            consumed.append(item)
            yield env.timeout(1)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    return env.processed_count


def run_preemption_churn(rounds: int) -> int:
    env = Environment()
    resource = PreemptiveResource(env)
    preempted = [0]

    def low(env):
        while True:
            with resource.request(priority=5) as req:
                yield req
                try:
                    yield env.timeout(10)
                except Interrupt:
                    preempted[0] += 1

    def high(env):
        for _ in range(rounds):
            yield env.timeout(3)
            with resource.request(priority=1) as req:
                yield req
                yield env.timeout(1)

    env.process(low(env))
    driver = env.process(high(env))
    env.run(until=driver)
    return env.processed_count


def _engine_events(config: ProtocolConfig, num_tasks: int) -> int:
    tree = generate_tree(TreeGeneratorParams(min_nodes=60, max_nodes=60),
                         seed=7)
    result = ProtocolEngine(tree, config, num_tasks).run()
    return result.events_processed


def run_engine_ic(num_tasks: int = 2000) -> int:
    """IC/FB=3 on a fixed 60-node ensemble tree — the preemption-heavy path."""
    return _engine_events(ProtocolConfig.interruptible(3), num_tasks)


def run_engine_non_ic(num_tasks: int = 2000) -> int:
    """non-IC/FB=2 on the same tree — the growth-free baseline path."""
    return _engine_events(
        ProtocolConfig.non_interruptible(2, buffer_growth=False), num_tasks)


#: Fixed tree for the long-run (steady-state warp) workloads.  Small
#: communication/computation weights keep the microstate period short, so
#: the warped variant reliably finds its recurrence within the first few
#: hundred completions; the exact variant pays full per-event cost either
#: way, making the pair a direct measure of the warp's value.
_WARP_TREE_PARAMS = TreeGeneratorParams(min_nodes=60, max_nodes=60,
                                        max_comm=8, max_comp=16,
                                        comp_divisor=16)


def _engine_tasks(config: ProtocolConfig, num_tasks: int) -> int:
    tree = generate_tree(_WARP_TREE_PARAMS, seed=1)
    ProtocolEngine(tree, config, num_tasks).run()
    return num_tasks


def run_engine_ic_10k(num_tasks: int = 10_000) -> int:
    """Long IC/FB=3 run, exact event-by-event simulation (tasks as units)."""
    return _engine_tasks(ProtocolConfig.interruptible(3), num_tasks)


def run_engine_ic_10k_warp(num_tasks: int = 10_000) -> int:
    """The same long run with steady-state warp fast-forwarding the middle."""
    return _engine_tasks(ProtocolConfig.interruptible(3, warp=True), num_tasks)


def run_engine_ic_10k_telemetry(num_tasks: int = 10_000) -> int:
    """The exact long run with default-sampling telemetry probes attached.

    Paired with ``run_engine_ic_10k``: the per_sec ratio of the two is the
    telemetry sampling overhead the CI gate holds to <=10%.
    """
    return _engine_tasks(
        replace(ProtocolConfig.interruptible(3), telemetry=TelemetryConfig()),
        num_tasks)


def run_engine_multiapp(num_tasks: int = 2000) -> int:
    """Two prioritized apps under the selfish allocator on the 60-node tree.

    Exercises the multi-application coordinator end to end: two full
    agent sets on one shared calendar, every transfer a fluid flow
    through the shared contention manager, and strict-priority
    reallocation on each flow start/finish.  Events are the denominator,
    as for the other 2k runs.
    """
    from repro.apps import Application, MultiAppEngine

    tree = generate_tree(TreeGeneratorParams(min_nodes=60, max_nodes=60),
                         seed=7)
    apps = [Application(num_tasks // 2, name=f"app{i}", priority=i)
            for i in range(2)]
    engine = MultiAppEngine(tree, apps, ProtocolConfig.interruptible(3),
                            allocator="selfish")
    return engine.run().events_processed


def run_engine_graph_leafspine(num_tasks: int = 2000) -> int:
    """IC/FB=3 on a generated leaf-spine fabric through the graph engine.

    Exercises the shared-link max-min path end to end: head-election
    overlay, per-flow route registration, and mid-flight rate
    reallocation on every flow start/finish — the cost the tree engine
    never pays.  Events are the denominator, as for the other 2k runs.
    """
    graph = generate_platform("leafspine", seed=7)
    engine = GraphProtocolEngine(
        graph, ProtocolConfig.interruptible(3), num_tasks,
        overlay=topology_overlay(graph))
    return engine.run().events_processed


def run_engine_graph_faults(num_tasks: int = 2000) -> int:
    """The leaf-spine run under a seeded chaos fault schedule.

    Same fabric and overlay as ``run_engine_graph_leafspine``, plus the
    routed fault path: flow kills on failed links, Dijkstra route
    recomputation, overlay re-election after a rack-head crash, and
    suspect/probe recovery in the agents.  Paired with the fault-free
    workload so the baseline gate catches regressions in the fault
    plumbing itself, not just in the clean path.
    """
    from repro.platform.faults import chaos_schedule

    graph = generate_platform("leafspine", seed=7)
    engine = GraphProtocolEngine(
        graph, ProtocolConfig.interruptible(3), num_tasks,
        overlay=topology_overlay(graph),
        faults=chaos_schedule(graph, seed=11, events=6))
    return engine.run().events_processed


#: 320-host leaf-spine (40 leaves, 2 spines, 400 links) — roughly twice the
#: fabric of the seed-7 workload, so per-event solver cost, not task count,
#: dominates.
_BIG_LEAFSPINE_PARAMS = TreeGeneratorParams(min_nodes=320, max_nodes=320)


def run_engine_graph_leafspine_big(num_tasks: int = 2000) -> int:
    """IC/FB=3 on a 320-host leaf-spine fabric through the graph engine.

    Same protocol as ``run_engine_graph_leafspine`` on ~2x the fabric:
    more racks in flight means wider overlay fan-out and more concurrent
    flows per reallocation, which is exactly the regime where the
    incremental solver's dirty-region bound matters.  Events are the
    denominator.
    """
    graph = generate_platform("leafspine", _BIG_LEAFSPINE_PARAMS, seed=21)
    engine = GraphProtocolEngine(
        graph, ProtocolConfig.interruptible(3), num_tasks,
        overlay=topology_overlay(graph))
    return engine.run().events_processed


def run_engine_multiapp_contended(num_tasks: int = 1800) -> int:
    """Three mixed-size apps under the fair-share allocator on the 60-node tree.

    Heavier contention than ``run_engine_multiapp``: three full agent
    sets (one per app) share every link, and the size-2/size-3 bags
    introduce non-unit volumes so transfers overlap rather than
    completing in lockstep.  Events are the denominator.
    """
    from repro.apps import Application, MultiAppEngine

    tree = generate_tree(TreeGeneratorParams(min_nodes=60, max_nodes=60),
                         seed=7)
    apps = [Application(num_tasks // 3, name=f"app{i}", size=i + 1,
                        priority=i)
            for i in range(3)]
    engine = MultiAppEngine(tree, apps, ProtocolConfig.interruptible(3),
                            allocator="fairshare")
    return engine.run().events_processed


def _contention_churn(ops: int, incremental: bool) -> int:
    """Rack-local flow churn driven straight at the contention kernel.

    No calendar, no agents: each op either starts a flow between two
    hosts (95% within one rack, 5% across the fabric) or finishes a
    random active one, holding ~64 flows in flight on the seed-7
    leaf-spine.  This isolates the solver from event dispatch — the
    per_sec ratio of the incremental run to its ``incremental=False``
    twin is the kernel speedup the CI contention gate enforces.
    """
    graph = generate_platform("leafspine", seed=7)
    manager = LinkContention(graph.link_capacities(), graph.contention,
                             incremental=incremental)
    rng = random.Random(13)
    num_hosts = sum(1 for w in graph.w if w is not None)
    per_leaf = graph.meta["hosts_per_leaf"]
    active = []
    fid = 0
    for now in range(1, ops + 1):
        if active and (len(active) >= 64 or rng.random() < 0.48):
            manager.finish(active.pop(rng.randrange(len(active))), now)
        else:
            if rng.random() < 0.05:
                a = rng.randrange(num_hosts)
                b = rng.randrange(num_hosts)
            else:
                rack = rng.randrange(num_hosts // per_leaf) * per_leaf
                a = rack + rng.randrange(per_leaf)
                b = rack + rng.randrange(per_leaf)
            if a == b:
                b = (b + 1) % num_hosts
            fid += 1
            manager.start(f"f{fid}", graph.route(a, b), 10**6, now)
            active.append(f"f{fid}")
    return ops


def run_contention_churn(ops: int = 20_000) -> int:
    """The churn workload on the incremental kernel (ops as units)."""
    return _contention_churn(ops, incremental=True)


def run_contention_churn_reference(ops: int = 1200) -> int:
    """The identical churn on the from-scratch reference solver.

    Fewer ops than the incremental twin — the reference re-solves the
    whole fabric per op, so 1200 ops already takes seconds — but
    ``per_sec`` normalizes by op count, so the pair's ratio is still the
    kernel speedup.
    """
    return _contention_churn(ops, incremental=False)


def run_engine_arrivals_diurnal(horizon: int = 40_000) -> int:
    """One open-loop diurnal "day" through the service driver.

    A three-phase rate profile (quiet / peak / shoulder) on the warp
    tree, gated by a token bucket sized below the peak rate so the
    admission path (drops, saturation accounting) is exercised alongside
    the latency sketch.  Aperiodic arrivals keep the warp out, so this
    measures the exact open-loop hot path: arrival timer, admission
    refill-kick, and per-completion sketch fold.  Events are the
    denominator, as for the other exact engine runs.
    """
    from repro.service import DiurnalArrivals, TokenBucket

    tree = generate_tree(_WARP_TREE_PARAMS, seed=1)
    engine = ProtocolEngine(
        tree, ProtocolConfig.interruptible(3), 0,
        arrivals=DiurnalArrivals(rates=(0.05, 0.6, 0.15), phase_len=5000,
                                 horizon=horizon, seed=3),
        admission=TokenBucket(rate="1/4", burst=64))
    return engine.run().events_processed


def _engine_arrivals_periodic(config: ProtocolConfig, num_tasks: int) -> int:
    from repro.service import PeriodicArrivals

    tree = generate_tree(_WARP_TREE_PARAMS, seed=1)
    result = ProtocolEngine(
        tree, config, 0,
        arrivals=PeriodicArrivals(interval=4, horizon=4 * num_tasks)).run()
    return result.service.completed


def run_engine_arrivals_10k(num_tasks: int = 10_000) -> int:
    """Long periodic open-loop run, exact simulation (tasks as units).

    Underloaded (arrival rate 1/4 vs ~0.42 service rate), so every
    arrival is admitted and completes — the per-task latency is the
    pure service time and the warped twin must reproduce the sketch
    bit-for-bit.
    """
    return _engine_arrivals_periodic(ProtocolConfig.interruptible(3),
                                     num_tasks)


def run_engine_arrivals_10k_warp(num_tasks: int = 10_000) -> int:
    """The same periodic open-loop run with the steady-state warp.

    Exactly-periodic arrivals are the one stream the warp stays armed
    under; the per_sec ratio against ``run_engine_arrivals_10k`` is the
    open-loop warp speedup the CI gate holds to >=3x.
    """
    return _engine_arrivals_periodic(
        ProtocolConfig.interruptible(3, warp=True), num_tasks)
