"""Ablation benchmark — overlay-tree construction strategies (§6 future work).

Compares BFS / shortest-path / MST / random spanning trees of random
physical topologies by the optimal steady-state rate of the resulting
platform tree.
"""

from repro.experiments import ExperimentScale, ablation


def test_bench_overlay_strategies(benchmark, report):
    result = benchmark.pedantic(
        lambda: ablation.overlay_strategies(
            ExperimentScale(trees=25, tasks=2), hosts=40),
        rounds=1, iterations=1)
    report(ablation.format_overlay_result(result))

    rates = result.mean_relative_rate
    assert set(rates) == {"bfs", "shortest-path", "mst", "random"}
    # Cost-aware constructions should not lose to random spanning trees.
    best_aware = max(rates["bfs"], rates["shortest-path"], rates["mst"])
    assert best_aware >= rates["random"] - 0.05
    assert sum(result.wins.values()) == result.graphs
