"""Benchmark — the multi-application coordinator's shared-platform path.

Two prioritized applications split a 2000-task bag on one 60-node tree:
two full agent sets share one calendar, and every transfer runs as a
fluid flow through the shared contention manager under the selfish
(strict-priority) allocator.  The workload body lives in ``workloads.py``
so ``perf.py`` (and the committed ``BENCH_kernel.json`` baseline)
measures the same code.
"""

from workloads import run_engine_multiapp


def test_bench_multiapp(benchmark):
    events = benchmark.pedantic(run_engine_multiapp, args=(2_000,),
                                rounds=1, iterations=1)
    # A contended 2-app run processes well over one event per task.
    assert events >= 4_000
