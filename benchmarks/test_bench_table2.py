"""Benchmark regenerating Table 2 — non-IC buffer usage by tree class.

Paper's reading: rampant buffer growth for non-IC, rising steeply with the
computation-to-communication ratio (medians 3 → 561, maxima 165 → 1951
across x = 500 → 10 000).
"""

from repro.experiments import ExperimentScale, fig5, table2


def test_bench_table2(benchmark, bench_scale, report):
    scale = ExperimentScale(trees=max(5, bench_scale.trees // 2),
                            tasks=bench_scale.tasks)
    result = benchmark.pedantic(lambda: table2.run(scale),
                                rounds=1, iterations=1)
    report(table2.format_result(result))

    finals = {x: result.medians[x][-1] for x in fig5.X_CLASSES}
    # Buffer usage rises with the computation parameter x.
    assert finals[10000] > finals[500]
    assert result.maxima[10000] > result.maxima[500]
    # The highest class needs far more than the 3 buffers IC gets by with.
    assert result.maxima[10000] > 30
    # Pool growth (over-requesting) dwarfs actual occupancy.
    assert result.pool_maxima[10000] >= result.maxima[10000]
