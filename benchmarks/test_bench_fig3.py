"""Benchmark regenerating Figure 3 — windowed throughput of selected trees.

The paper's reading: normalized window rates are noisy early (some trees
spike above 1.0 before settling), one of the three trees never reaches the
optimal rate, and a slow climber takes much longer — motivating the
two-crossings-past-threshold onset heuristic.
"""

from repro.experiments import fig3


def test_bench_fig3(benchmark, bench_scale, report):
    result = benchmark.pedantic(
        lambda: fig3.run(bench_scale, candidates=25),
        rounds=1, iterations=1)
    report(fig3.format_result(result))

    assert len(result.series) == 3
    behaviours = {s.behaviour for s in result.series}
    # The scan must find at least the headline behaviours of the figure.
    assert "overshoot-then-settle" in behaviours or "slow-climb" in behaviours
    for series in result.series:
        rates = [r for _w, r in series.samples]
        assert all(r >= 0 for r in rates)
        # normalized rates hover near or below 1 at steady state
        mid = rates[len(rates) // 2]
        assert mid < 1.3
