"""Benchmark regenerating Figure 5 — computation-to-communication ratios.

Paper's reading: IC/FB=3 performs well across all four x classes, while
non-IC/IB=1 deteriorates sharply as the ratio rises.
"""

from repro.experiments import ExperimentScale, fig5


def test_bench_fig5(benchmark, bench_scale, report):
    scale = ExperimentScale(trees=max(5, bench_scale.trees // 2),
                            tasks=bench_scale.tasks)
    result = benchmark.pedantic(lambda: fig5.run(scale), rounds=1, iterations=1)
    report(fig5.format_result(result))

    ic_label = fig5.FIG5_CONFIGS[1].label
    non_ic_label = fig5.FIG5_CONFIGS[0].label
    # IC/FB=3 stays strong in every class.
    for x in fig5.X_CLASSES:
        assert result.reached[(x, ic_label)] >= 80.0
    # non-IC deteriorates with the ratio: worst class clearly below best.
    non_ic = [result.reached[(x, non_ic_label)] for x in fig5.X_CLASSES]
    assert min(non_ic[-2:]) <= min(non_ic[:2])
    assert non_ic[-1] < result.reached[(fig5.X_CLASSES[-1], ic_label)]
