"""Benchmark — the open-loop service driver's streaming hot path.

One diurnal traffic day on the 60-node warp tree: a three-phase rate
profile through a token bucket, so every layer of service mode is on the
measured path — the lazy arrival generator, the admission refill-kick,
and the per-completion latency-sketch fold.  Plus the periodic exact/warp
pair whose per_sec ratio is the open-loop warp speedup.  The workload
bodies live in ``workloads.py`` so ``perf.py`` (and the committed
``BENCH_kernel.json`` baseline) measures the same code.
"""

from workloads import (
    run_engine_arrivals_10k,
    run_engine_arrivals_10k_warp,
    run_engine_arrivals_diurnal,
)


def test_bench_arrivals_diurnal(benchmark):
    events = benchmark.pedantic(run_engine_arrivals_diurnal, args=(40_000,),
                                rounds=1, iterations=1)
    # Thousands of admitted tasks each cost several calendar events.
    assert events >= 10_000


def test_bench_arrivals_periodic_pair(benchmark):
    completed = benchmark.pedantic(run_engine_arrivals_10k_warp,
                                   args=(10_000,), rounds=1, iterations=1)
    assert completed == 10_000
    # The warped run must deliver the identical task count as the exact
    # twin — the speedup itself is gated in CI via BENCH_kernel.json.
    assert run_engine_arrivals_10k(2_000) == 2_000
