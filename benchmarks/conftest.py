"""Shared benchmark configuration.

Benchmarks regenerate the paper's tables and figures at a laptop scale and
print the same rows the paper reports (see EXPERIMENTS.md for a recorded
paper-vs-measured comparison).  Scale knobs, overridable via environment:

* ``REPRO_BENCH_TREES``  — ensemble size per protocol (default 30)
* ``REPRO_BENCH_TASKS``  — tasks per application (default 2000)

Set them to the paper's 25000/10000 to run the full-scale evaluation.
"""

import os

import pytest

from repro.experiments import ExperimentScale


@pytest.fixture(scope="session")
def bench_scale() -> ExperimentScale:
    trees = int(os.environ.get("REPRO_BENCH_TREES", "30"))
    tasks = int(os.environ.get("REPRO_BENCH_TASKS", "2000"))
    return ExperimentScale(trees=trees, tasks=tasks)


@pytest.fixture()
def report(capsys):
    """Print a report table through pytest's capture so it reaches the console."""

    def emit(text: str) -> None:
        with capsys.disabled():
            print("\n" + text + "\n")

    return emit
