"""Ablation benchmark — buffer decay (§2.2's "optimally, buffer decay").

The paper requires growth and calls decay optimal but never builds it.
This bench quantifies our implementation: with decay enabled, the
non-interruptible protocol keeps (at least) its steady-state success rate
while shedding surplus buffers — and demonstrably recovers pool size after
a contention phase ends.
"""

from repro.experiments import ExperimentScale, ablation
from repro.platform import Mutation, MutationSchedule, figure2a_tree
from repro.protocols import ProtocolConfig, simulate


def test_bench_buffer_decay(benchmark, bench_scale, report):
    scale = ExperimentScale(trees=max(5, bench_scale.trees // 3),
                            tasks=bench_scale.tasks)
    result = benchmark.pedantic(
        lambda: ablation.buffer_decay_ablation(scale),
        rounds=1, iterations=1)
    report(ablation.format_decay_result(result))

    plain = result.reached["non-IC, IB=1"]
    with_decay = result.reached["non-IC, IB=1 +decay"]
    # Decay must not collapse the success rate...
    assert with_decay >= plain - 15.0
    assert result.decayed["non-IC, IB=1 +decay"] > 0
    assert result.decayed["non-IC, IB=1"] == 0
    # ...and the recovery-after-contention property holds on the canonical
    # platform: buffers grown during a slow phase are shed afterwards.
    tree = figure2a_tree()
    tree.set_edge_cost(2, 40)
    schedule = MutationSchedule([
        Mutation(node=2, attribute="c", value=2, after_tasks=500)])
    run = simulate(tree, ProtocolConfig.non_interruptible(buffer_decay=True),
                   4000, mutations=schedule)
    assert run.buffers_decayed > 0
