"""Ablation benchmark — abrupt failures and autonomous recovery.

Random trees suffer mid-run crashes (whole first-level subtrees die,
losing buffered and in-flight tasks) at increasing crash rates; the
IC/FB=3 protocol must reclaim every lost task instance, finish the full
application, and converge to the *surviving* platform's optimal rate.
"""

from repro.experiments import ExperimentScale, ablation
from repro.experiments.reporting import format_table
from repro.metrics.faults import recovery_report
from repro.platform import CrashEvent, FaultSchedule
from repro.platform.generator import PAPER_DEFAULTS, generate_tree
from repro.protocols import ProtocolConfig, simulate


def test_bench_fault_recovery(benchmark, bench_scale, report):
    scale = ExperimentScale(trees=max(5, bench_scale.trees // 3),
                            tasks=bench_scale.tasks)
    result = benchmark.pedantic(
        lambda: ablation.fault_recovery(scale),
        rounds=1, iterations=1)
    report(ablation.format_fault_result(result))

    assert result.all_completed
    assert result.total_reexecuted > 0
    assert result.within_five_percent >= int(0.6 * len(result.efficiencies))


def _crash_rate_sweep(scale: ExperimentScale, crash_counts):
    """For each crash count, kill that many first-level subtrees mid-run."""
    config = ProtocolConfig.interruptible(3)
    rows = []
    for crashes in crash_counts:
        efficiencies = []
        reexecuted = 0
        completed = True
        for i in range(scale.trees):
            tree = generate_tree(PAPER_DEFAULTS, seed=scale.base_seed + i)
            victims = tree.children[tree.root][:crashes]
            faults = FaultSchedule([
                CrashEvent(at_time=200 + 100 * k, node=victim)
                for k, victim in enumerate(victims)])
            result = simulate(tree, config, scale.tasks, faults=faults)
            completed &= sum(result.per_node_computed) == scale.tasks
            rep = recovery_report(result)
            if rep.post_recovery_efficiency is not None:
                efficiencies.append(rep.post_recovery_efficiency)
            reexecuted += rep.tasks_reexecuted
        mean_eff = (sum(efficiencies) / len(efficiencies)
                    if efficiencies else float("nan"))
        rows.append((crashes, completed, reexecuted, mean_eff))
    return rows


def test_bench_crash_rate_sweep(benchmark, bench_scale, report):
    scale = ExperimentScale(trees=max(5, bench_scale.trees // 5),
                            tasks=bench_scale.tasks)
    crash_counts = (0, 1, 2, 3)
    rows = benchmark.pedantic(
        lambda: _crash_rate_sweep(scale, crash_counts),
        rounds=1, iterations=1)
    report(format_table(
        ["crashed subtrees", "all completed", "tasks re-executed",
         "rate vs surviving optimal"],
        [[crashes, conserved, reexec, f"{eff:.3f}"]
         for crashes, conserved, reexec, eff in rows],
        title=(f"Crash-rate sweep (IC/FB=3, {scale.trees} trees, "
               f"{scale.tasks} tasks)")))

    for crashes, completed, reexecuted, mean_eff in rows:
        assert completed, f"lost tasks at {crashes} crashes"
        assert mean_eff > 0.75, f"rate collapsed at {crashes} crashes"
    # With no crashes nothing may be re-executed.
    assert rows[0][2] == 0
    # Heavier crash rates destroy (weakly) more work overall.
    assert rows[-1][2] >= rows[1][2] > 0
