"""Ablation benchmark — resilience to dynamically evolving pools (§6).

Random trees suffer churn (a fast cluster joins at the root early in the
run; separately, a first-level subtree departs); the IC/FB=3 protocol must
lose no work and its mid-run throughput must converge to the *grown*
platform's optimal rate.
"""

from repro.experiments import ExperimentScale, ablation


def test_bench_churn_resilience(benchmark, bench_scale, report):
    scale = ExperimentScale(trees=max(5, bench_scale.trees // 3),
                            tasks=bench_scale.tasks)
    result = benchmark.pedantic(
        lambda: ablation.churn_resilience(scale),
        rounds=1, iterations=1)
    report(ablation.format_churn_result(result))

    assert result.all_conserved
    assert result.all_departed
    assert result.within_ten_percent >= int(0.7 * len(result.join_norms))
