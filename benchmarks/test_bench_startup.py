"""Benchmark — startup-phase length (a §4.2 claim the paper measured but
did not plot: "for all protocols the startup time increases as the
computation-to-communication ratio increases"; also FB=1 starts up faster
than FB=3).
"""

import statistics

from repro.experiments import ExperimentScale
from repro.metrics import phase_breakdown
from repro.platform.generator import PAPER_DEFAULTS, generate_tree
from repro.protocols import ProtocolConfig, simulate
from repro.steady_state import solve_tree

X_CLASSES = (500, 10000)
CONFIGS = (ProtocolConfig.interruptible(1), ProtocolConfig.interruptible(3))


def startup_sweep(trees: int, tasks: int):
    rows = {}
    for x in X_CLASSES:
        params = PAPER_DEFAULTS.with_max_comp(x)
        for config in CONFIGS:
            startups = []
            for seed in range(trees):
                tree = generate_tree(params, seed=seed)
                optimal = solve_tree(tree).rate
                result = simulate(tree, config, tasks)
                phases = phase_breakdown(result, optimal)
                if phases.startup is not None:
                    startups.append(phases.startup)
            rows[(x, config.label)] = startups
    return rows


def test_bench_startup_phases(benchmark, bench_scale, report):
    trees = max(5, bench_scale.trees // 3)
    rows = benchmark.pedantic(
        lambda: startup_sweep(trees, bench_scale.tasks),
        rounds=1, iterations=1)

    lines = [f"{'x class':>8} {'protocol':<10} {'median startup':>15} {'trees':>6}"]
    medians = {}
    for (x, label), startups in rows.items():
        med = statistics.median(startups) if startups else float("nan")
        medians[(x, label)] = med
        lines.append(f"{x:>8} {label:<10} {med:>15.0f} {len(startups):>6}")
    report("Startup-phase length (timesteps to onset of optimal rate)\n"
           + "\n".join(lines))

    # Startup grows with the computation-to-communication ratio...
    for config in CONFIGS:
        assert medians[(10000, config.label)] > medians[(500, config.label)]
    # ...and with the number of fixed buffers where buffers matter (at the
    # high ratio, pipelines are long; at x=500 the difference is noise).
    assert medians[(10000, "IC, FB=3")] >= medians[(10000, "IC, FB=1")]
