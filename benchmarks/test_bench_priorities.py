"""Ablation benchmark — why priorities must follow bandwidth, not speed.

Not in the paper's evaluation, but it quantifies the design choice §2.1
argues for: ordering children by edge cost (bandwidth-centric) versus by
CPU speed (compute-centric) versus no ordering at all (FIFO).
"""

from repro.experiments import ExperimentScale, ablation


def test_bench_priority_rules(benchmark, bench_scale, report):
    scale = ExperimentScale(trees=max(5, bench_scale.trees // 3),
                            tasks=bench_scale.tasks)
    result = benchmark.pedantic(lambda: ablation.priority_rules(scale),
                                rounds=1, iterations=1)
    report(ablation.format_priority_result(result))

    bw = result.mean_normalized_rate["non-IC, FB=3"]
    cc = result.mean_normalized_rate["non-IC, FB=3 [compute-centric]"]
    fifo = result.mean_normalized_rate["non-IC, FB=3 [fifo]"]
    assert bw >= cc - 0.02
    assert bw >= fifo - 0.02
    assert bw > 0.85
