"""Micro-benchmarks of the discrete-event kernel (the simulation substrate).

These are classic pytest-benchmark timings (multiple rounds) for the code
paths the protocol engine exercises most: raw timers, coroutine processes,
stores, and preemptible resources.  The workload bodies live in
``workloads.py`` so the ``perf.py`` trajectory harness (and the committed
``BENCH_kernel.json`` baseline) measures exactly the same code.  Each
workload returns the kernel's ``processed_count`` — the events/sec
denominator.
"""

from workloads import (
    run_preemption_churn,
    run_process_chain,
    run_producer_consumer,
    run_timer_storm,
)


def test_bench_timer_throughput(benchmark):
    processed = benchmark(run_timer_storm, 20_000)
    assert processed >= 20_000


def test_bench_process_throughput(benchmark):
    # 10 workers x 1000 timeouts, plus process-completion events.
    processed = benchmark(run_process_chain, 10_000)
    assert processed >= 10_000


def test_bench_store_throughput(benchmark):
    # 2000 puts + 2000 gets + pacing timeouts on each side.
    processed = benchmark(run_producer_consumer, 2_000)
    assert processed >= 4_000


def test_bench_preemption_churn(benchmark):
    # 500 high-priority rounds, each preempting the low-priority holder.
    processed = benchmark(run_preemption_churn, 500)
    assert processed >= 1_500
