"""Micro-benchmarks of the discrete-event kernel (the simulation substrate).

These are classic pytest-benchmark timings (multiple rounds) for the three
code paths the protocol engine exercises most: raw timers, coroutine
processes, and preemptible resources.  They guard against performance
regressions that would make the ensemble experiments impractical.
"""

from repro.sim import Environment, Interrupt, PreemptiveResource, Store


def run_timer_storm(events: int) -> int:
    env = Environment()

    def reschedule(remaining):
        if remaining > 0:
            env.call_in(1, reschedule, remaining - 1)

    for lane in range(10):
        env.call_in(1, reschedule, events // 10)
    env.run()
    return env.processed_count


def run_process_chain(count: int) -> int:
    env = Environment()
    done = []

    def worker(env, n):
        for _ in range(n):
            yield env.timeout(1)
        done.append(n)

    for _ in range(10):
        env.process(worker(env, count // 10))
    env.run()
    return len(done)


def run_producer_consumer(items: int) -> int:
    env = Environment()
    store = Store(env, capacity=8)
    consumed = []

    def producer(env):
        for i in range(items):
            yield store.put(i)
            yield env.timeout(1)

    def consumer(env):
        for _ in range(items):
            item = yield store.get()
            consumed.append(item)
            yield env.timeout(1)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    return len(consumed)


def run_preemption_churn(rounds: int) -> int:
    env = Environment()
    resource = PreemptiveResource(env)
    preempted = [0]

    def low(env):
        while True:
            with resource.request(priority=5) as req:
                yield req
                try:
                    yield env.timeout(10)
                except Interrupt:
                    preempted[0] += 1

    def high(env):
        for _ in range(rounds):
            yield env.timeout(3)
            with resource.request(priority=1) as req:
                yield req
                yield env.timeout(1)

    env.process(low(env))
    driver = env.process(high(env))
    env.run(until=driver)
    return preempted[0]


def test_bench_timer_throughput(benchmark):
    processed = benchmark(run_timer_storm, 20_000)
    assert processed >= 20_000


def test_bench_process_throughput(benchmark):
    finished = benchmark(run_process_chain, 10_000)
    assert finished == 10


def test_bench_store_throughput(benchmark):
    consumed = benchmark(run_producer_consumer, 2_000)
    assert consumed == 2_000


def test_bench_preemption_churn(benchmark):
    preempted = benchmark(run_preemption_churn, 500)
    assert preempted >= 400
