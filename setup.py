"""Legacy setup shim.

Keeps ``pip install -e .`` / ``python setup.py develop`` working in offline
environments whose setuptools cannot build PEP 660 editable wheels (no
``wheel`` package available).  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
